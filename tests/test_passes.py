"""Metamorphic test suite for the circuit-rewrite optimizer passes.

Every pass promises (see ``docs/compiler-passes.md``):

* purity — the input circuit object is never mutated;
* idempotence — running a pass twice equals running it once;
* monotonicity — the operation count never increases;
* semantics — unitary equivalence up to global phase (light-cone pruning:
  equality of the measured-qubit marginal instead);
* value-blindness — an optimized symbolic ansatz and its optimized resolved
  instance (at generic angles) share one ``circuit_topology_key``.

The suite checks each promise metamorphically over the seeded fuzz corpus
plus hand-built worst cases, and pins the cache-keying regression: a
rewritten circuit must re-classify and re-route from scratch (no stale
entries keyed by mutated gate objects).
"""

import itertools

import numpy as np
import pytest

from repro.circuits import (
    CNOT,
    CZ,
    Circuit,
    ControlledGate,
    H,
    LineQubit,
    MatrixGate,
    ParamResolver,
    Rx,
    Ry,
    Rz,
    S,
    SWAP,
    Symbol,
    T,
    X,
    Z,
    ZZ,
    classify_circuit,
    depolarize,
    measure,
)
from repro.circuits.clifford import CircuitClass, equal_up_to_global_phase
from repro.circuits.gates import CPhase, PhaseShift, TDG
from repro.circuits.passes import (
    CliffordPrefixPass,
    CommutationPass,
    FusionPass,
    LightConePass,
    PassPipeline,
    default_pipeline,
    optimize_circuit,
    resolve_pipeline,
    split_clifford_prefix,
)
from repro.circuits.passes.rules import commutes, removable_identity, structurally_diagonal, try_merge
from repro.circuits.topology import circuit_topology_key
from repro.api.routing import select_backend

ALL_PASSES = [LightConePass(), FusionPass(), CommutationPass(), CliffordPrefixPass()]

# Mirrors conftest.REWRITE_ALPHABETS (module-level parametrize can't reach
# the fixture); random_fuzz_circuit rejects unknown names, so drift fails
# loudly.
REWRITE_ALPHABETS = ("rotation-chains", "commuting-blocks", "clifford-prefix", "spectator")

#: (seed, num_qubits, depth) corpus reused by several invariants below.
CORPUS = [(seed, 3 + seed % 2, 4 + seed % 3) for seed in range(8)]


def _fuzz(circuit_fuzzer, seed, num_qubits, depth, alphabet):
    return circuit_fuzzer(seed, num_qubits, depth, alphabet=alphabet)


def _operations_snapshot(circuit):
    return [(id(op), op.gate, op.qubits) for op in circuit.all_operations()]


class TestPassInvariants:
    """Purity, idempotence and monotonicity, per pass, over the corpus."""

    @pytest.mark.parametrize("alphabet", REWRITE_ALPHABETS)
    @pytest.mark.parametrize("seed,num_qubits,depth", CORPUS)
    def test_purity_input_never_mutated(self, circuit_fuzzer, seed, num_qubits, depth, alphabet):
        circuit = _fuzz(circuit_fuzzer, seed, num_qubits, depth, alphabet)
        snapshot = _operations_snapshot(circuit)
        for single_pass in ALL_PASSES:
            single_pass.run(circuit)
            assert _operations_snapshot(circuit) == snapshot, single_pass.name

    @pytest.mark.parametrize("alphabet", REWRITE_ALPHABETS)
    @pytest.mark.parametrize("seed,num_qubits,depth", CORPUS)
    def test_idempotence(self, circuit_fuzzer, seed, num_qubits, depth, alphabet):
        circuit = _fuzz(circuit_fuzzer, seed, num_qubits, depth, alphabet)
        for single_pass in ALL_PASSES:
            once, stats_once = single_pass.run(circuit)
            twice, stats_twice = single_pass.run(once)
            assert stats_twice.rewrites == 0, single_pass.name
            assert twice is once, single_pass.name

    @pytest.mark.parametrize("alphabet", REWRITE_ALPHABETS)
    @pytest.mark.parametrize("seed,num_qubits,depth", CORPUS)
    def test_gate_count_never_increases(self, circuit_fuzzer, seed, num_qubits, depth, alphabet):
        circuit = _fuzz(circuit_fuzzer, seed, num_qubits, depth, alphabet)
        before = len(circuit.all_operations())
        for single_pass in ALL_PASSES:
            rewritten, _ = single_pass.run(circuit)
            assert len(rewritten.all_operations()) <= before, single_pass.name
        result = optimize_circuit(circuit)
        assert len(result.circuit.all_operations()) <= before

    def test_noop_returns_input_object(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1])])
        for single_pass in ALL_PASSES:
            rewritten, stats = single_pass.run(circuit)
            assert rewritten is circuit and stats.rewrites == 0, single_pass.name


class TestUnitaryEquivalence:
    """Rewrites preserve the unitary up to global phase (n <= 8)."""

    UNITARY_PASSES = [FusionPass(), CommutationPass(), CliffordPrefixPass()]

    @pytest.mark.parametrize(
        "alphabet", ("rotation-chains", "commuting-blocks", "clifford-prefix", "universal")
    )
    @pytest.mark.parametrize("seed,num_qubits,depth", CORPUS)
    def test_per_pass_unitary_equivalence(self, circuit_fuzzer, seed, num_qubits, depth, alphabet):
        circuit = _fuzz(circuit_fuzzer, seed, num_qubits, depth, alphabet)
        qubits = circuit.all_qubits()
        reference = circuit.unitary(qubit_order=qubits)
        for single_pass in self.UNITARY_PASSES:
            rewritten, _ = single_pass.run(circuit)
            assert equal_up_to_global_phase(
                rewritten.unitary(qubit_order=qubits), reference
            ), f"{single_pass.name} seed={seed}"

    def test_eight_qubit_pipeline_equivalence(self, circuit_fuzzer):
        circuit = _fuzz(circuit_fuzzer, 5, 8, 4, "rotation-chains")
        qubits = circuit.all_qubits()
        assert len(qubits) <= 8
        pipeline = PassPipeline([FusionPass(), CommutationPass()])
        result = pipeline.run(circuit)
        assert equal_up_to_global_phase(
            result.circuit.unitary(qubit_order=qubits), circuit.unitary(qubit_order=qubits)
        )

    def test_light_cone_preserves_measured_marginal(self):
        q = LineQubit.range(4)
        circuit = Circuit(
            [H(q[0]), CNOT(q[0], q[1]), X(q[2]), Ry(0.7)(q[3]), measure(q[0], q[1], key="m")]
        )
        rewritten, dropped = LightConePass().run(circuit)
        assert dropped.rewrites == 2  # the two spectator operations
        from repro.statevector import StateVectorSimulator

        base = StateVectorSimulator().simulate(circuit, qubit_order=q).probabilities()
        pruned = StateVectorSimulator().simulate(rewritten, qubit_order=q).probabilities()
        marginal = lambda p: p.reshape((2,) * 4).sum(axis=(2, 3)).reshape(-1)
        np.testing.assert_allclose(marginal(pruned), marginal(base), atol=1e-12)

    def test_light_cone_noop_without_measurements(self, circuit_fuzzer):
        circuit = _fuzz(circuit_fuzzer, 0, 4, 4, "universal")
        rewritten, stats = LightConePass().run(circuit)
        assert rewritten is circuit and stats.rewrites == 0


class TestPipelineOrderPermutations:
    """All orderings of the default passes converge to the same fixpoint."""

    @pytest.mark.parametrize("alphabet", REWRITE_ALPHABETS)
    @pytest.mark.parametrize("seed", (0, 3, 6))
    def test_permutations_agree(self, circuit_fuzzer, seed, alphabet):
        circuit = _fuzz(circuit_fuzzer, seed, 4, 5, alphabet)
        passes = [LightConePass(), FusionPass(), CommutationPass()]
        results = [
            PassPipeline(order).run(circuit).circuit
            for order in itertools.permutations(passes)
        ]
        reference = results[0]
        qubits = circuit.all_qubits()
        for other in results[1:]:
            assert len(other.all_operations()) == len(reference.all_operations())
            if reference.all_qubits() == qubits and not circuit.measurement_operations():
                assert equal_up_to_global_phase(
                    other.unitary(qubit_order=qubits), reference.unitary(qubit_order=qubits)
                )

    def test_pipeline_reaches_fixpoint(self, circuit_fuzzer):
        circuit = _fuzz(circuit_fuzzer, 1, 4, 6, "rotation-chains")
        result = default_pipeline().run(circuit)
        again = default_pipeline().run(result.circuit)
        assert not again.stats.changed
        assert again.circuit is result.circuit


class TestValueBlindness:
    """Optimized symbolic ansatz and optimized resolved instance share a key."""

    def _symbolic_circuit(self):
        q = LineQubit.range(3)
        a, b, c = Symbol("a"), Symbol("b"), Symbol("c")
        return Circuit(
            [
                H(q[0]),
                Rz(a)(q[0]),
                Rz(b)(q[0]),
                ZZ(2 * c)(q[0], q[1]),
                Rx(a)(q[2]),
                Rx(b)(q[2]),
                CNOT(q[1], q[2]),
            ]
        )

    @pytest.mark.parametrize(
        "values", [{"a": 0.913, "b": 1.117, "c": 0.733}, {"a": 2.41, "b": 0.17, "c": 1.9}]
    )
    def test_topology_key_shared_at_generic_angles(self, values):
        symbolic = self._symbolic_circuit()
        resolved = symbolic.resolve_parameters(ParamResolver(values))
        key_symbolic = circuit_topology_key(optimize_circuit(symbolic).circuit)
        key_resolved = circuit_topology_key(optimize_circuit(resolved).circuit)
        assert key_symbolic == key_resolved

    def test_same_rewrite_count_symbolic_and_resolved(self):
        symbolic = self._symbolic_circuit()
        resolved = symbolic.resolve_parameters(
            ParamResolver({"a": 1.31, "b": 0.57, "c": 2.03})
        )
        stats_symbolic = optimize_circuit(symbolic).stats
        stats_resolved = optimize_circuit(resolved).stats
        assert [s.rewrites for s in stats_symbolic.passes] == [
            s.rewrites for s in stats_resolved.passes
        ]

    def test_symbolic_inverse_pair_cancels_like_concrete(self):
        q = LineQubit.range(1)
        a = Symbol("a")
        symbolic = Circuit([Rz(a)(q[0]), Rz(-1.0 * a)(q[0])])
        concrete = Circuit([Rz(0.83)(q[0]), Rz(-0.83)(q[0])])
        assert len(optimize_circuit(symbolic).circuit.all_operations()) == 0
        assert len(optimize_circuit(concrete).circuit.all_operations()) == 0

    def test_generic_concrete_rotations_never_cancel_numerically(self):
        # Rz(t) . PhaseShift(-t) is the identity up to phase at ANY t, but a
        # symbolic pair can never cancel — so the concrete pair must not
        # either, or the shared topology key would split.
        q = LineQubit.range(1)
        circuit = Circuit([Rz(0.61)(q[0]), PhaseShift(-0.61)(q[0])])
        assert len(optimize_circuit(circuit).circuit.all_operations()) == 2

    def test_liftable_identity_rotation_is_kept(self):
        # Rz(2*pi) == -I numerically, but its zero/one pattern matches the
        # generic Rz so the canonicalizer lifts it; dropping it would split
        # the key between this instance and a symbolic twin.  Rz(0) and
        # Rz(4*pi) are exactly I — ones where the generic probe is generic —
        # so they are NOT liftable and the pass may drop them.
        q = LineQubit.range(1)
        kept = optimize_circuit(Circuit([Rz(2 * np.pi)(q[0])])).circuit
        assert len(kept.all_operations()) == 1
        for angle in (0.0, 4 * np.pi):
            dropped = optimize_circuit(Circuit([Rz(angle)(q[0])])).circuit
            assert len(dropped.all_operations()) == 0


class TestCliffordPrefix:
    """Prefix extraction: maximality on clean splits, exactness always."""

    def test_split_concatenation_is_equivalent(self, circuit_fuzzer):
        circuit = _fuzz(circuit_fuzzer, 2, 4, 6, "clifford-prefix")
        prefix, remainder = split_clifford_prefix(circuit)
        qubits = circuit.all_qubits()
        recombined = Circuit()
        recombined.append(prefix.all_operations() + remainder.all_operations())
        assert equal_up_to_global_phase(
            recombined.unitary(qubit_order=qubits), circuit.unitary(qubit_order=qubits)
        )

    def test_prefix_is_clifford(self, circuit_fuzzer):
        circuit = _fuzz(circuit_fuzzer, 4, 4, 6, "clifford-prefix")
        prefix, _ = split_clifford_prefix(circuit)
        if prefix.all_operations():
            assert classify_circuit(prefix).clifford

    def test_blocked_qubits_stay_blocked(self):
        q = LineQubit.range(2)
        # T blocks q0; the H(q0) behind it must not migrate into the prefix.
        circuit = Circuit([T(q[0]), H(q[0]), H(q[1])])
        prefix, remainder = split_clifford_prefix(circuit)
        assert [str(op) for op in prefix.all_operations()] == ["H(q1)"]
        assert [str(op) for op in remainder.all_operations()] == ["T(q0)", "H(q0)"]

    def test_resolver_dependent_split(self):
        q = LineQubit.range(1)
        a = Symbol("a")
        circuit = Circuit([Rz(a)(q[0])])
        prefix_unbound, _ = split_clifford_prefix(circuit)
        assert not prefix_unbound.all_operations()
        prefix_clifford, remainder = split_clifford_prefix(
            circuit, ParamResolver({"a": np.pi / 2})
        )
        assert len(prefix_clifford.all_operations()) == 1
        assert not remainder.all_operations()

    def test_noise_blocks_prefix(self):
        q = LineQubit.range(1)
        circuit = Circuit([H(q[0])])
        circuit.append(depolarize(0.1).on(q[0]))
        circuit.append(S(q[0]))
        prefix, remainder = split_clifford_prefix(circuit)
        assert len(prefix.all_operations()) == 1
        assert len(remainder.all_operations()) == 2


class TestRewriteRules:
    """Direct unit coverage of the shared rule layer."""

    def test_rotation_merge_is_exact_for_every_family(self):
        q = LineQubit.range(2)
        for family, qubits in (
            (Rx, (q[0],)),
            (Ry, (q[0],)),
            (Rz, (q[0],)),
            (PhaseShift, (q[0],)),
            (ZZ, (q[0], q[1])),
            (CPhase, (q[0], q[1])),
        ):
            a, b = 0.73, 1.91
            merged = try_merge(family(a)(*qubits), family(b)(*qubits))
            assert merged is not None and merged is not None
            assert equal_up_to_global_phase(
                merged.gate.unitary(None),
                family(b).unitary(None) @ family(a).unitary(None),
            ), family.__name__

    def test_symmetric_family_merges_across_qubit_swap(self):
        q = LineQubit.range(2)
        merged = try_merge(ZZ(0.3)(q[0], q[1]), ZZ(0.4)(q[1], q[0]))
        assert merged is not None
        assert merged.qubits == (q[0], q[1])
        # Non-symmetric families must not merge across a swap.
        assert try_merge(CNOT(q[0], q[1]), CNOT(q[1], q[0])) is None

    def test_controlled_rotation_merge(self):
        q = LineQubit.range(2)
        crz_a = ControlledGate(Rz(0.4))
        crz_b = ControlledGate(Rz(0.5))
        merged = try_merge(crz_a(q[0], q[1]), crz_b(q[0], q[1]))
        assert merged is not None
        assert isinstance(merged.gate, ControlledGate)
        assert equal_up_to_global_phase(
            merged.gate.unitary(None), crz_b.unitary(None) @ crz_a.unitary(None)
        )

    def test_constant_inverse_pairs_cancel(self):
        from repro.circuits.passes.rules import CANCEL

        q = LineQubit.range(2)
        assert try_merge(H(q[0]), H(q[0])) is CANCEL
        assert try_merge(T(q[0]), TDG(q[0])) is CANCEL
        assert try_merge(CNOT(q[0], q[1]), CNOT(q[0], q[1])) is CANCEL
        assert try_merge(H(q[0]), T(q[0])) is None

    def test_removable_identity_edges(self):
        q = LineQubit.range(1)
        a = Symbol("a")
        assert removable_identity(Rz(0.0)(q[0]))
        assert not removable_identity(Rz(2 * np.pi)(q[0]))  # liftable: kept
        assert not removable_identity(Rz(a)(q[0]))
        assert not removable_identity(measure(q[0], key="m"))
        assert not removable_identity(H(q[0]))

    def test_structural_diagonality(self):
        assert structurally_diagonal(Rz(0.3))
        assert structurally_diagonal(Rz(Symbol("a")))
        assert structurally_diagonal(PhaseShift(0.4))
        assert structurally_diagonal(ZZ(Symbol("b")))
        assert structurally_diagonal(CPhase(0.9))
        assert not structurally_diagonal(Rx(0.3))
        assert not structurally_diagonal(Ry(Symbol("c")))
        assert structurally_diagonal(Z) and structurally_diagonal(S) and structurally_diagonal(T)
        assert not structurally_diagonal(H)
        assert structurally_diagonal(CZ)
        assert structurally_diagonal(ControlledGate(Rz(0.2)))
        assert not structurally_diagonal(ControlledGate(Rx(0.2)))
        diagonal_matrix = MatrixGate("D", np.diag([1.0, 1j]).astype(complex))
        assert structurally_diagonal(diagonal_matrix)

    def test_commutation_rules(self):
        q = LineQubit.range(3)
        # Disjoint qubits.
        assert commutes(H(q[0]), X(q[1]))
        # Diagonal-diagonal overlap.
        assert commutes(Rz(0.3)(q[0]), ZZ(0.4)(q[0], q[1]))
        # Diagonal on CNOT control / X-family on CNOT target.
        assert commutes(T(q[0]), CNOT(q[0], q[1]))
        assert commutes(Rx(0.3)(q[1]), CNOT(q[0], q[1]))
        assert not commutes(T(q[1]), CNOT(q[0], q[1]))
        assert not commutes(Rx(0.3)(q[0]), CNOT(q[0], q[1]))
        # CNOTs sharing only a control (or only a target) commute.
        assert commutes(CNOT(q[0], q[1]), CNOT(q[0], q[2]))
        assert commutes(CNOT(q[0], q[2]), CNOT(q[1], q[2]))
        assert not commutes(CNOT(q[0], q[1]), CNOT(q[1], q[2]))
        # Constant same-tuple numeric fallback.
        assert commutes(X(q[0]), X(q[0]))
        assert not commutes(X(q[0]), Z(q[0]))
        # Measurements and noise never commute past anything on their wires.
        assert not commutes(measure(q[0], key="m"), H(q[0]))
        assert not commutes(depolarize(0.1).on(q[0]), H(q[0]))

    def test_fusion_cascades_through_holes(self):
        q = LineQubit.range(1)
        # H (Rz Rz) H : the rotations merge to Rz(0) and vanish, making the
        # two H's adjacent — they must then cancel in the same pass run.
        circuit = Circuit([H(q[0]), Rz(0.4)(q[0]), Rz(-0.4)(q[0]), H(q[0])])
        rewritten, stats = FusionPass().run(circuit)
        assert len(rewritten.all_operations()) == 0
        assert stats.rewrites >= 2

    def test_commutation_never_crosses_noise(self):
        q = LineQubit.range(1)
        circuit = Circuit([T(q[0])])
        circuit.append(depolarize(0.2).on(q[0]))
        circuit.append(TDG(q[0]))
        rewritten, stats = CommutationPass().run(circuit)
        assert stats.rewrites == 0 and rewritten is circuit


class TestRoutingAfterRewrite:
    """Regression: rewrites must re-classify and re-route with fresh keys."""

    def test_optimized_circuit_reroutes_to_stabilizer(self):
        q = LineQubit.range(2)
        circuit = Circuit([T(q[0]), CNOT(q[0], q[1]), TDG(q[0])])
        before = select_backend(circuit, fallback="state_vector")
        assert before.backend == "state_vector"
        optimized = optimize_circuit(circuit).circuit
        after = select_backend(optimized, fallback="state_vector")
        assert after.backend == "stabilizer"
        # Classification itself must flip, proving no stale memo entry was
        # reused for the rewritten gate objects.
        assert not classify_circuit(circuit).clifford
        assert classify_circuit(optimized).clifford

    def test_hybrid_reroutes_with_optimize(self):
        from repro.simulator.hybrid import HybridSimulator

        q = LineQubit.range(2)
        circuit = Circuit([T(q[0]), CNOT(q[0], q[1]), TDG(q[0])])
        plain = HybridSimulator(seed=0)
        plain.simulate(circuit)
        assert plain.last_decision.backend == "state_vector"
        optimizing = HybridSimulator(seed=0, optimize="auto")
        optimizing.simulate(circuit)
        assert optimizing.last_decision.backend == "stabilizer"

    def test_device_routing_changes_with_optimize(self):
        import repro

        q = LineQubit.range(2)
        circuit = Circuit([T(q[0]), CNOT(q[0], q[1]), TDG(q[0])])
        device = repro.device("auto")
        plain = device.run([circuit], repetitions=64, seed=1).result()
        assert plain.rows[0]["backend"] == "state_vector"
        optimized = device.run([circuit], repetitions=64, seed=1, optimize="auto").result()
        assert optimized.rows[0]["backend"] == "stabilizer"

    def test_value_keyed_caches_cannot_go_stale(self):
        # Two equal-by-value MatrixGate instances must agree; two
        # different-by-value instances must not collide — i.e. the
        # diagonality memo keys by matrix content, never object identity.
        diagonal = MatrixGate("A", np.diag([1.0, -1.0]).astype(complex))
        also_diagonal = MatrixGate("B", np.diag([1.0, -1.0]).astype(complex))
        dense = MatrixGate("C", np.array([[0, 1], [1, 0]], dtype=complex))
        assert structurally_diagonal(diagonal)
        assert structurally_diagonal(also_diagonal)
        assert not structurally_diagonal(dense)


class TestFrameworkSurface:
    """Pipeline plumbing: stats, spec resolution, error paths."""

    def test_stats_accounting(self):
        q = LineQubit.range(1)
        circuit = Circuit([Rz(0.3)(q[0]), Rz(0.4)(q[0]), H(q[0])])
        result = optimize_circuit(circuit)
        assert result.stats.operations_before == 3
        assert result.stats.operations_after == 2
        assert result.stats.removed == 1
        assert result.stats.changed
        fusion_stats = [s for s in result.stats.passes if s.pass_name == "fusion"]
        assert sum(s.rewrites for s in fusion_stats) == 1
        summary = result.stats.summary()
        assert "3 -> 2 operations" in summary and "fusion" in summary

    def test_optimize_false_is_identity(self, circuit_fuzzer):
        circuit = _fuzz(circuit_fuzzer, 0, 3, 3, "rotation-chains")
        result = optimize_circuit(circuit, optimize=False)
        assert result.circuit is circuit
        assert not result.stats.changed and result.stats.passes == ()

    def test_resolve_pipeline_spec(self):
        assert resolve_pipeline(None) is None
        assert resolve_pipeline(False) is None
        assert isinstance(resolve_pipeline(True), PassPipeline)
        assert isinstance(resolve_pipeline("auto"), PassPipeline)
        custom = PassPipeline([FusionPass()])
        assert resolve_pipeline(custom) is custom
        with pytest.raises(ValueError, match="optimize"):
            resolve_pipeline("aggressive")

    def test_pipeline_validation_and_repr(self):
        with pytest.raises(ValueError, match="max_iterations"):
            PassPipeline([FusionPass()], max_iterations=0)
        assert "fusion" in repr(PassPipeline([FusionPass()]))
        assert "FusionPass" in repr(FusionPass())

    def test_base_pass_rewrite_is_abstract(self):
        from repro.circuits.passes import Pass

        with pytest.raises(NotImplementedError):
            Pass().rewrite(Circuit())

    def test_kc_compile_optimize(self):
        from repro.simulator.kc_simulator import KnowledgeCompilationSimulator

        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), Rz(0.4)(q[0]), Rz(0.5)(q[0]), CNOT(q[0], q[1])])
        simulator = KnowledgeCompilationSimulator(cache=None)
        compiled = simulator.compile_circuit(circuit, optimize=True)
        assert simulator.last_optimization is not None
        assert simulator.last_optimization.removed == 1
        reference = simulator.compile_circuit(circuit)
        np.testing.assert_allclose(
            compiled.probabilities(None), reference.probabilities(None), atol=1e-10
        )

    def test_sweep_optimize(self):
        from repro.simulator.sweep import ParameterSweep

        q = LineQubit.range(2)
        a, b = Symbol("a"), Symbol("b")
        circuit = Circuit([H(q[0]), Rz(a)(q[0]), Rz(b)(q[0]), CNOT(q[0], q[1])])
        sweep = ParameterSweep(circuit, optimize="auto")
        assert sweep.last_optimization is not None and sweep.last_optimization.removed == 1
        plain = ParameterSweep(circuit)
        points = [{"a": 0.2, "b": 0.3}, {"a": 1.4, "b": -0.5}]
        rows = sweep.run(points).rows
        reference = plain.run(points).rows
        for row, ref in zip(rows, reference):
            np.testing.assert_allclose(row["probabilities"], ref["probabilities"], atol=1e-10)
