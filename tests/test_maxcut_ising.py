"""Tests for the Max-Cut and 2D Ising problem definitions."""

import networkx as nx
import numpy as np
import pytest

from repro.variational import IsingModel2D, MaxCutProblem, random_regular_maxcut, ring_maxcut, square_grid_ising


class TestMaxCut:
    def test_cut_value_on_triangle(self):
        problem = MaxCutProblem(nx.complete_graph(3))
        assert problem.cut_value([0, 0, 0]) == 0
        assert problem.cut_value([0, 1, 1]) == 2
        assert problem.cut_value([0, 1, 0]) == 2

    def test_cost_is_negative_cut(self):
        problem = ring_maxcut(4)
        assert problem.cost([0, 1, 0, 1]) == -4.0

    def test_brute_force_even_ring(self):
        problem = ring_maxcut(6)
        best_value, best_bits = problem.max_cut_brute_force()
        assert best_value == 6
        assert problem.cut_value(best_bits) == 6

    def test_brute_force_odd_ring(self):
        problem = ring_maxcut(5)
        best_value, _ = problem.max_cut_brute_force()
        assert best_value == 4

    def test_expected_cut_from_distribution(self):
        problem = ring_maxcut(4)
        distribution = np.zeros(16)
        distribution[0b0101] = 0.5
        distribution[0b0000] = 0.5
        assert problem.expected_cut(distribution) == pytest.approx(2.0)

    def test_random_regular_graph_has_requested_degree(self):
        problem = random_regular_maxcut(8, degree=3, seed=4)
        degrees = [d for _, d in problem.graph.degree()]
        assert all(d == 3 for d in degrees)

    def test_small_vertex_counts_fall_back_to_cycle(self):
        problem = random_regular_maxcut(3, degree=3, seed=1)
        assert problem.num_vertices == 3
        assert len(problem.edges) == 3

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ring_maxcut(4).cut_value([0, 1])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            MaxCutProblem(nx.Graph())


class TestIsing:
    def test_ferromagnetic_chain_ground_state(self):
        # Negative coupling favours aligned spins.
        model = IsingModel2D(1, 4, coupling=-1.0, field=0.0)
        energy, bits = model.ground_state_brute_force()
        assert energy == -3.0
        assert bits in ((0, 0, 0, 0), (1, 1, 1, 1))

    def test_antiferromagnetic_square(self):
        model = IsingModel2D(2, 2, coupling=1.0, field=0.0)
        energy, bits = model.ground_state_brute_force()
        assert energy == -4.0
        # The ground state is a checkerboard.
        assert bits in ((0, 1, 1, 0), (1, 0, 0, 1))

    def test_field_breaks_degeneracy(self):
        model = IsingModel2D(1, 2, coupling=-1.0, field=0.5)
        energy_up = model.energy([0, 0])
        energy_down = model.energy([1, 1])
        assert energy_down < energy_up

    def test_energy_definition(self):
        model = IsingModel2D(1, 2, coupling=2.0, field=0.0)
        assert model.energy([0, 0]) == pytest.approx(2.0)
        assert model.energy([0, 1]) == pytest.approx(-2.0)

    def test_expected_energy(self):
        model = IsingModel2D(1, 2, coupling=1.0, field=0.0)
        distribution = np.array([0.5, 0.0, 0.0, 0.5])
        assert model.expected_energy(distribution) == pytest.approx(1.0)

    def test_grid_edges(self):
        model = IsingModel2D(2, 3)
        # 2x3 grid: 2*2 horizontal + 3 vertical = 7 edges.
        assert len(model.edges) == 7

    def test_site_index_bounds(self):
        model = IsingModel2D(2, 2)
        with pytest.raises(ValueError):
            model.site_index(2, 0)

    def test_square_grid_factory(self):
        model = square_grid_ising(6)
        assert model.num_sites == 6
        assert model.rows * model.cols == 6
        prime = square_grid_ising(7)
        assert prime.rows == 1 and prime.cols == 7

    def test_square_grid_random_fields(self):
        model = square_grid_ising(4, seed=3)
        assert len(set(model.fields)) > 1
