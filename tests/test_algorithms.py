"""Validation of the quantum-algorithm benchmark suite on the state-vector simulator.

Mirrors the paper's Appendix A.6.1 validation list: each algorithm circuit is
simulated and its output distribution (or other analytic property) checked.
"""

import numpy as np
import pytest

from repro.algorithms import (
    bell_state_circuit,
    bernstein_vazirani_circuit,
    chsh_circuit,
    chsh_value,
    deutsch_circuit,
    deutsch_jozsa_circuit,
    expected_qft_amplitudes,
    ghz_circuit,
    grover_circuit,
    hidden_shift_circuit,
    inverse_qft_circuit,
    qft_circuit,
    random_circuit,
    recover_secret,
    secret_consistent,
    simon_circuit,
    teleportation_circuit,
)
from repro.circuits import phase_damp
from repro.statevector import StateVectorSimulator


SIMULATOR = StateVectorSimulator(seed=11)


def exact_distribution(instance):
    return SIMULATOR.simulate(instance.circuit).probabilities()


class TestBasicCircuits:
    def test_bell_state(self):
        instance = bell_state_circuit()
        assert np.allclose(exact_distribution(instance), instance.expected_distribution, atol=1e-9)

    def test_noisy_bell_instance_builds(self):
        instance = bell_state_circuit(noise_channel=phase_damp(0.36))
        assert instance.circuit.has_noise

    @pytest.mark.parametrize("num_qubits", [2, 3, 5])
    def test_ghz(self, num_qubits):
        instance = ghz_circuit(num_qubits)
        assert np.allclose(exact_distribution(instance), instance.expected_distribution, atol=1e-9)

    def test_teleportation(self):
        instance = teleportation_circuit(message_angle=0.8)
        assert np.allclose(exact_distribution(instance), instance.expected_distribution, atol=1e-9)

    def test_chsh_violates_classical_bound(self):
        distributions = {}
        for alice in (0, 1):
            for bob in (0, 1):
                instance = chsh_circuit(alice, bob)
                distributions[(alice, bob)] = exact_distribution(instance)
        value = chsh_value(distributions)
        assert value == pytest.approx(2 * np.sqrt(2), abs=1e-6)
        assert value > 2.0


class TestOracleAlgorithms:
    @pytest.mark.parametrize("oracle", ["constant", "balanced"])
    def test_deutsch_jozsa(self, oracle):
        instance = deutsch_jozsa_circuit(3, oracle=oracle)
        assert np.allclose(exact_distribution(instance), instance.expected_distribution, atol=1e-9)

    def test_deutsch_single_qubit(self):
        instance = deutsch_circuit(balanced=True)
        distribution = exact_distribution(instance)
        # Input register must read 1 for a balanced oracle.
        assert distribution[2] + distribution[3] == pytest.approx(1.0)

    @pytest.mark.parametrize("secret", [[1, 0, 1], [0, 0, 1], [1, 1, 1, 1]])
    def test_bernstein_vazirani(self, secret):
        instance = bernstein_vazirani_circuit(secret)
        assert np.allclose(exact_distribution(instance), instance.expected_distribution, atol=1e-9)

    @pytest.mark.parametrize("shift", [[1, 0, 0, 1], [0, 1, 1, 0], [1, 1, 1, 1, 0, 0]])
    def test_hidden_shift(self, shift):
        instance = hidden_shift_circuit(shift)
        distribution = exact_distribution(instance)
        expected_index = int("".join(str(b) for b in instance.expected_bitstring), 2)
        assert distribution[expected_index] == pytest.approx(1.0, abs=1e-9)

    def test_simon_samples_orthogonal_to_secret(self):
        secret = [1, 1, 0]
        instance = simon_circuit(secret)
        samples = SIMULATOR.sample(instance.circuit, 200, seed=5)
        assert secret_consistent(samples.samples, secret, num_input_qubits=3)

    def test_simon_secret_recovery(self):
        secret = [1, 0, 1]
        instance = simon_circuit(secret)
        samples = SIMULATOR.sample(instance.circuit, 64, seed=7)
        recovered = recover_secret(samples.samples, num_input_qubits=3)
        assert recovered == tuple(secret)


class TestQFT:
    @pytest.mark.parametrize("num_qubits,value", [(2, 1), (3, 5), (4, 9)])
    def test_qft_amplitudes_match_analytic_form(self, num_qubits, value):
        instance = qft_circuit(num_qubits, input_value=value)
        state = SIMULATOR.simulate(instance.circuit).state_vector
        assert np.allclose(state, expected_qft_amplitudes(num_qubits, value), atol=1e-9)

    def test_qft_output_uniform(self):
        instance = qft_circuit(3, input_value=6)
        assert np.allclose(exact_distribution(instance), np.full(8, 1 / 8), atol=1e-9)

    @pytest.mark.parametrize("frequency", [0, 3, 7])
    def test_inverse_qft_round_trip(self, frequency):
        instance = inverse_qft_circuit(3, frequency)
        distribution = exact_distribution(instance)
        assert distribution[frequency] == pytest.approx(1.0, abs=1e-9)


class TestGrover:
    @pytest.mark.parametrize("marked", [[1, 1], [0, 1, 0], [1, 0, 1, 1]])
    def test_marked_state_amplified(self, marked):
        instance = grover_circuit(marked)
        distribution = exact_distribution(instance)
        marked_index = int("".join(str(b) for b in marked), 2)
        assert distribution[marked_index] == pytest.approx(
            instance.metadata["success_probability"], abs=1e-9
        )
        assert distribution[marked_index] > 0.5

    def test_two_qubit_grover_is_exact(self):
        instance = grover_circuit([1, 0])
        distribution = exact_distribution(instance)
        assert distribution[2] == pytest.approx(1.0, abs=1e-9)


class TestRandomCircuits:
    def test_random_circuit_reproducible(self):
        first = random_circuit(4, 3, seed=5)
        second = random_circuit(4, 3, seed=5)
        assert first.circuit == second.circuit

    def test_random_circuit_normalised(self):
        instance = random_circuit(5, 4, seed=8)
        distribution = exact_distribution(instance)
        assert distribution.sum() == pytest.approx(1.0)
        # Output should be spread over many basis states (anti-concentration).
        assert np.count_nonzero(distribution > 1e-6) > 8
