"""Checkpoint/resume tests: the job journal and ``repro.resume_job``.

The durability contract:

* every finished item is checkpointed atomically with a content
  fingerprint; a resumed job loads checkpoints *before* routing, so
  already-done items cost zero compiles and zero evaluations;
* killing the driver process mid-batch (SIGKILL — no cleanup handlers) and
  resuming produces results **bit-identical** to an uninterrupted run;
* a corrupted checkpoint record is detected by its fingerprint and only
  that item re-runs — corruption can cost work, never correctness.
"""

import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import (
    CNOT,
    Circuit,
    H,
    JobError,
    LineQubit,
    ParameterSweep,
    Rx,
    Symbol,
    device,
    measure,
    resume_job,
)
import importlib

# ``repro.api`` re-exports the ``device()`` factory under the same name as
# the module, so fetch the module itself for monkeypatching.
device_module = importlib.import_module("repro.api.device")
from repro.api.journal import JOB_DIR_ENV, JobJournal, new_job_id

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _ghz(n=3):
    qubits = LineQubit.range(n)
    ops = [H(qubits[0])]
    ops += [CNOT(qubits[i], qubits[i + 1]) for i in range(n - 1)]
    ops.append(measure(*qubits))
    return Circuit(ops)


def _rows_equal(a, b):
    return all(
        np.array_equal(
            np.asarray(a[i]["samples"].samples), np.asarray(b[i]["samples"].samples)
        )
        for i in range(len(a))
    )


class _EvaluationCounter:
    """Wrap ``_evaluate_items`` and count the items actually evaluated."""

    def __init__(self, monkeypatch):
        self.items = []
        original = device_module._evaluate_items

        def counting(sim, backend, circuits, items, ctx, **kwargs):
            self.items.extend(index for index, *_ in items)
            return original(sim, backend, circuits, items, ctx, **kwargs)

        monkeypatch.setattr(device_module, "_evaluate_items", counting)


class TestJobJournal:
    def test_checkpoint_roundtrip(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.checkpoint_row(3, {"index": 3, "value": "x"})
        assert journal.load_row(3) == {"index": 3, "value": "x"}
        assert journal.load_row(4) is None
        assert journal.completed_indices() == {3}

    def test_corrupted_checkpoint_loads_as_missing(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.checkpoint_row(0, {"value": 1})
        with open(journal.wal_path, "r+b") as handle:
            handle.seek(-5, os.SEEK_END)
            handle.write(b"XXXXX")
        assert journal.load_row(0) is None
        assert journal.load_rows() == {}

    def test_truncated_checkpoint_loads_as_missing(self, tmp_path):
        # A crash mid-append leaves a torn tail record; it must read as
        # missing while every record before it stays valid.
        journal = JobJournal(str(tmp_path))
        journal.checkpoint_row(0, {"value": 1})
        journal.checkpoint_row(1, {"value": 2})
        size = os.path.getsize(journal.wal_path)
        with open(journal.wal_path, "r+b") as handle:
            handle.truncate(size - 7)
        assert journal.load_row(1) is None
        assert journal.load_row(0) == {"value": 1}

    def test_unrecognized_log_ignored(self, tmp_path):
        # A file that is not a journal log (wrong magic / foreign format)
        # yields no checkpoints instead of crashing the resume.
        journal = JobJournal(str(tmp_path))
        os.makedirs(journal.path, exist_ok=True)
        with open(journal.wal_path, "wb") as handle:
            pickle.dump({"format": 999, "index": 0, "payload": b""}, handle)
        assert journal.load_row(0) is None
        assert journal.load_rows() == {}

    def test_corrupt_record_is_skipped_not_fatal(self, tmp_path):
        # Flipping bytes inside one record's payload invalidates only that
        # record: the length header still locates the next boundary.
        journal = JobJournal(str(tmp_path))
        for index in range(3):
            journal.checkpoint_row(index, {"value": index})
        start, length, _row = journal._scan()[1]
        with open(journal.wal_path, "r+b") as handle:
            handle.seek(start + length // 2)
            handle.write(b"\xff\xfe\xfd")
        assert journal.completed_indices() == {0, 2}

    def test_duplicate_records_latest_wins(self, tmp_path):
        # A resumed run appends; on replay the newest record for an index
        # is authoritative.
        journal = JobJournal(str(tmp_path))
        journal.checkpoint_row(0, {"value": "stale"})
        journal.checkpoint_row(0, {"value": "fresh"})
        assert journal.load_row(0) == {"value": "fresh"}

    def test_unpicklable_row_degrades_to_not_checkpointed(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.checkpoint_row(0, {"bad": lambda: None})
        assert journal.load_row(0) is None

    def test_manifest_roundtrip(self, tmp_path):
        journal = JobJournal(str(tmp_path), "abc123")
        assert not journal.has_manifest()
        journal.write_manifest({"device": {"backend": "auto"}, "run": {}})
        assert journal.has_manifest()
        assert journal.load_manifest()["device"] == {"backend": "auto"}

    def test_job_ids_are_unique(self):
        assert new_job_id() != new_job_id()


class TestCheckpointedRuns:
    def test_job_id_requires_checkpoint(self):
        with pytest.raises(ValueError):
            device("auto").run([_ghz()], repetitions=4, job_id="abc")

    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        circuit = _ghz()
        clean = device("auto", seed=9).run([circuit] * 4, repetitions=32).result()
        job = device("auto", seed=9).run(
            [circuit] * 4, repetitions=32, checkpoint=str(tmp_path)
        )
        assert _rows_equal(job.result(), clean)
        journal = JobJournal(str(tmp_path), job.job_id)
        assert journal.completed_indices() == {0, 1, 2, 3}

    def test_resume_fully_checkpointed_job_evaluates_nothing(
        self, tmp_path, monkeypatch
    ):
        circuit = _ghz()
        job = device("auto", seed=9).run(
            [circuit] * 4, repetitions=32, checkpoint=str(tmp_path)
        )
        original = job.result()

        counter = _EvaluationCounter(monkeypatch)
        resumed = resume_job(job.job_id, directory=str(tmp_path))
        assert counter.items == []
        assert _rows_equal(resumed.result(), original)

    def test_resume_reruns_only_missing_items(self, tmp_path, monkeypatch):
        circuit = _ghz()
        job = device("auto", seed=9).run(
            [circuit] * 5, repetitions=32, checkpoint=str(tmp_path)
        )
        original = job.result()
        # Drop item 2's checkpoint by rewriting the log without it.
        journal = JobJournal(str(tmp_path), job.job_id)
        rows = journal.load_rows()
        os.unlink(journal.wal_path)
        rewritten = JobJournal(str(tmp_path), job.job_id)
        for index, row in rows.items():
            if index != 2:
                rewritten.checkpoint_row(index, row)
        rewritten.close()

        counter = _EvaluationCounter(monkeypatch)
        resumed = resume_job(job.job_id, directory=str(tmp_path))
        assert counter.items == [2]
        assert _rows_equal(resumed.result(), original)

    def test_resume_reruns_corrupted_item_only(self, tmp_path, monkeypatch):
        circuit = _ghz()
        job = device("auto", seed=9).run(
            [circuit] * 4, repetitions=32, checkpoint=str(tmp_path)
        )
        original = job.result()
        journal = JobJournal(str(tmp_path), job.job_id)
        start, length, _row = journal._scan()[1]
        with open(journal.wal_path, "r+b") as handle:
            handle.seek(start + length - 3)
            handle.write(b"zzz")

        counter = _EvaluationCounter(monkeypatch)
        resumed = resume_job(job.job_id, directory=str(tmp_path))
        assert counter.items == [1]
        assert _rows_equal(resumed.result(), original)

    def test_resume_uses_environment_directory(self, tmp_path, monkeypatch):
        circuit = _ghz()
        job = device("auto", seed=9).run(
            [circuit] * 2, repetitions=16, checkpoint=str(tmp_path)
        )
        original = job.result()
        monkeypatch.setenv(JOB_DIR_ENV, str(tmp_path))
        resumed = resume_job(job.job_id)
        assert _rows_equal(resumed.result(), original)

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(JobError):
            resume_job("nonexistent", directory=str(tmp_path))

    def test_resume_without_directory_raises(self, monkeypatch):
        monkeypatch.delenv(JOB_DIR_ENV, raising=False)
        with pytest.raises(JobError):
            resume_job("whatever")

    def test_pooled_checkpointed_run_matches_plain_run(self, tmp_path):
        circuit = _ghz()
        clean = device("auto", seed=9).run([circuit] * 6, repetitions=16).result()
        job = device("auto", seed=9).run(
            [circuit] * 6, repetitions=16, jobs=2, checkpoint=str(tmp_path)
        )
        assert _rows_equal(job.result(timeout=120), clean)
        journal = JobJournal(str(tmp_path), job.job_id)
        assert journal.completed_indices() == set(range(6))

    def test_sweep_checkpoint_plumbs_through(self, tmp_path):
        theta = Symbol("theta")
        qubits = LineQubit.range(2)
        circuit = Circuit(
            [Rx(theta).on(qubits[0]), CNOT(qubits[0], qubits[1]), measure(*qubits)]
        )
        sweep = ParameterSweep(circuit)
        points = [{"theta": value} for value in (0.1, 0.7, 1.3)]
        result = sweep.run(
            points, repetitions=16, seed=4, checkpoint=str(tmp_path), job_id="sweep-1"
        )
        journal = JobJournal(str(tmp_path), "sweep-1")
        assert journal.completed_indices() == {0, 1, 2}
        clean = ParameterSweep(circuit).run(points, repetitions=16, seed=4)
        for row, clean_row in zip(result.rows, clean.rows):
            assert np.array_equal(
                np.asarray(row["samples"].samples),
                np.asarray(clean_row["samples"].samples),
            )


class TestCrashRecovery:
    def test_sigkilled_driver_resumes_bit_identical(self, tmp_path):
        """SIGKILL the driver process mid-batch; resume must replay nothing
        already checkpointed and converge to the uninterrupted result."""
        job_id = "crash-test-job"
        script = f"""
import sys
sys.path.insert(0, {REPO_SRC!r})
from repro import FaultInjector, device
from repro.circuits import CNOT, Circuit, H, LineQubit, measure

qubits = LineQubit.range(3)
ops = [H(qubits[0])] + [CNOT(qubits[i], qubits[i + 1]) for i in range(2)]
ops.append(measure(*qubits))
circuit = Circuit(ops)

# The injector SIGKILLs *this* process when it reaches item 3: items 0-2
# are checkpointed, the rest are not, and no cleanup code runs.
device("auto", seed=21).run(
    [circuit] * 6,
    repetitions=32,
    checkpoint={str(tmp_path)!r},
    job_id={job_id!r},
    fault_injector=FaultInjector(kill={{3: 1}}),
)
print("UNREACHABLE")
"""
        process = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == -signal.SIGKILL
        assert "UNREACHABLE" not in process.stdout

        journal = JobJournal(str(tmp_path), job_id)
        checkpointed = journal.completed_indices()
        assert checkpointed == {0, 1, 2}

        resumed = resume_job(job_id, directory=str(tmp_path)).result()
        clean = device("auto", seed=21).run([_ghz()] * 6, repetitions=32).result()
        assert _rows_equal(resumed, clean)

    def test_second_resume_after_crash_evaluates_nothing(self, tmp_path, monkeypatch):
        circuit = _ghz()
        job = device("auto", seed=21).run(
            [circuit] * 4, repetitions=16, checkpoint=str(tmp_path)
        )
        job.result()
        # First resume replays nothing; so does a second one.
        for _ in range(2):
            counter = _EvaluationCounter(monkeypatch)
            resumed = resume_job(job.job_id, directory=str(tmp_path))
            assert counter.items == []
            assert resumed.done()
