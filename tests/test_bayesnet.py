"""Tests for the circuit -> Bayesian network compiler and variable elimination."""

import numpy as np
import pytest

from repro.bayesnet import (
    ENTRY_ONE,
    ENTRY_WEIGHT,
    ENTRY_ZERO,
    BayesianNetwork,
    BayesNode,
    amplitude_of_assignment,
    circuit_to_bayesnet,
    final_density_matrix,
    final_state_vector,
    measurement_probabilities,
)
from repro.circuits import (
    CNOT,
    CZ,
    Circuit,
    H,
    ISWAP,
    LineQubit,
    ParamResolver,
    Rx,
    Symbol,
    X,
    ZZ,
    bit_flip,
    depolarize,
    phase_damp,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.statevector import StateVectorSimulator


class TestNetworkStructure:
    def test_bell_network_nodes(self, bell_circuit):
        network = circuit_to_bayesnet(bell_circuit)
        assert network.node_names == ["q0m0", "q1m0", "q0m1", "q1m1"]
        assert network.final_node_names == ["q0m1", "q1m1"]
        assert network.internal_node_names == []
        network.validate()

    def test_paper_bell_example_structure(self):
        """Figure 2(c): H -> q0m1, phase damping -> q0m2rv + q0m2, CNOT -> q1m3-like node."""
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        circuit.append(phase_damp(0.36).on(q[0]))
        circuit.append(CNOT(q[0], q[1]))
        network = circuit_to_bayesnet(circuit)
        assert "q0m2rv" in network.node_names
        assert network.noise_node_names == ["q0m2rv"]
        rv_node = network.node("q0m2rv")
        assert rv_node.cardinality == 2
        # The CNOT target node depends on both the control state and the prior target state.
        target_node = network.node(network.final_node_of[q[1]])
        assert set(target_node.parents) == {"q0m2", "q1m0"}

    def test_cnot_does_not_create_control_node(self, bell_circuit):
        network = circuit_to_bayesnet(bell_circuit)
        q = LineQubit.range(2)
        # The control qubit keeps its post-H node as its final node.
        assert network.final_node_of[q[0]] == "q0m1"

    def test_diagonal_gate_creates_single_phase_node(self):
        q = LineQubit.range(2)
        network = circuit_to_bayesnet(Circuit([H(q[0]), H(q[1]), CZ(q[0], q[1])]))
        # CZ is diagonal: only one new node carries the phase.
        assert network.num_nodes == 2 + 2 + 1

    def test_non_monomial_two_qubit_gate_uses_chain_encoding(self):
        q = LineQubit.range(2)
        network = circuit_to_bayesnet(Circuit([ISWAP(q[0], q[1])]))
        # ISWAP is monomial so it should not need the chain encoding; use XX instead.
        from repro.circuits import XX

        network = circuit_to_bayesnet(Circuit([XX(0.7)(q[0], q[1])]))
        finals = network.final_node_names
        last = network.node(finals[1])
        assert len(last.parents) == 3  # two inputs + sibling output

    def test_depolarizing_noise_node_cardinality(self, noisy_bell_circuit):
        network = circuit_to_bayesnet(noisy_bell_circuit)
        assert len(network.noise_node_names) == 3
        assert all(network.node(name).cardinality == 4 for name in network.noise_node_names)

    def test_moral_graph_contains_family_edges(self, bell_circuit):
        network = circuit_to_bayesnet(bell_circuit)
        adjacency = network.moral_graph()
        assert "q0m0" in adjacency["q0m1"]

    def test_add_node_validation(self):
        network = BayesianNetwork()
        with pytest.raises(ValueError):
            network.add_node(
                BayesNode("child", 2, ["missing_parent"], lambda r: np.ones((2, 2)))
            )

    def test_duplicate_node_rejected(self):
        network = BayesianNetwork()
        network.add_node(BayesNode("a", 2, [], lambda r: np.ones(2)))
        with pytest.raises(ValueError):
            network.add_node(BayesNode("a", 2, [], lambda r: np.ones(2)))


class TestStructureClassification:
    def test_hadamard_structure_is_all_weights(self):
        q = LineQubit(0)
        network = circuit_to_bayesnet(Circuit([H(q)]))
        node = network.node("q0m1")
        structure = node.structure(network.probe_resolvers())
        assert np.all(structure == ENTRY_WEIGHT)

    def test_cnot_structure_is_deterministic(self, bell_circuit):
        network = circuit_to_bayesnet(bell_circuit)
        q = LineQubit.range(2)
        node = network.node(network.final_node_of[q[1]])
        structure = node.structure(network.probe_resolvers())
        assert set(np.unique(structure)) <= {ENTRY_ZERO, ENTRY_ONE}

    def test_parameterized_rz_zero_pattern_stable(self):
        q = LineQubit(0)
        circuit = Circuit([H(q), ZZ(Symbol("t"))(q, LineQubit(1))])
        network = circuit_to_bayesnet(circuit)
        probes = network.probe_resolvers()
        assert len(probes) == 3
        for node in network.nodes:
            structure = node.structure(probes)
            assert structure.shape == node.expected_shape(network)


class TestVariableElimination:
    def test_bell_state_vector(self, bell_circuit):
        state = final_state_vector(circuit_to_bayesnet(bell_circuit))
        assert np.allclose(state, np.array([1, 0, 0, 1]) / np.sqrt(2))

    def test_matches_state_vector_simulator(self, qaoa_like_circuit, qaoa_resolver):
        network = circuit_to_bayesnet(qaoa_like_circuit)
        state = final_state_vector(network, qaoa_resolver)
        expected = StateVectorSimulator().simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        assert np.allclose(state, expected, atol=1e-9)

    @pytest.mark.parametrize("order_method", ["min_fill", "min_degree", "lexicographic", "hypergraph"])
    def test_all_elimination_orders_agree(self, bell_circuit, order_method):
        network = circuit_to_bayesnet(bell_circuit)
        state = final_state_vector(network, order_method=order_method)
        assert np.allclose(state, np.array([1, 0, 0, 1]) / np.sqrt(2))

    def test_noisy_density_matrix_matches_dense_simulator(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        circuit.append(bit_flip(0.2).on(q[0]))
        circuit.append(CNOT(q[0], q[1]))
        network = circuit_to_bayesnet(circuit)
        rho = final_density_matrix(network)
        expected = DensityMatrixSimulator().simulate(circuit).density_matrix
        assert np.allclose(rho, expected, atol=1e-9)

    def test_paper_phase_damping_density_matrix(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        circuit.append(phase_damp(0.36).on(q[0]))
        circuit.append(CNOT(q[0], q[1]))
        rho = final_density_matrix(circuit_to_bayesnet(circuit))
        assert rho[0, 3] == pytest.approx(0.4)
        assert rho[0, 0] == pytest.approx(0.5)

    def test_measurement_probabilities_noisy(self, noisy_bell_circuit):
        probabilities = measurement_probabilities(circuit_to_bayesnet(noisy_bell_circuit))
        expected = DensityMatrixSimulator().simulate(noisy_bell_circuit).probabilities()
        assert np.allclose(probabilities, expected, atol=1e-9)

    def test_amplitude_of_assignment(self, bell_circuit):
        network = circuit_to_bayesnet(bell_circuit)
        amplitude = amplitude_of_assignment(network, {"q0m1": 1, "q1m1": 1})
        assert amplitude == pytest.approx(1 / np.sqrt(2))

    def test_joint_amplitude_product(self, bell_circuit):
        network = circuit_to_bayesnet(bell_circuit)
        value = network.joint_amplitude({"q0m0": 0, "q1m0": 0, "q0m1": 1, "q1m1": 1})
        assert value == pytest.approx(1 / np.sqrt(2))

    def test_initial_bits(self, bell_circuit):
        network = circuit_to_bayesnet(bell_circuit, initial_bits=[1, 0])
        state = final_state_vector(network)
        # H X |0> = |->, so the Bell circuit gives (|00> - |11>)/sqrt(2).
        assert state[0] == pytest.approx(1 / np.sqrt(2))
        assert state[3] == pytest.approx(-1 / np.sqrt(2))
