"""End-to-end tests for the knowledge-compilation simulator."""

import numpy as np
import pytest

from repro.circuits import (
    CNOT,
    CZ,
    Circuit,
    H,
    LineQubit,
    ParamResolver,
    Rx,
    Ry,
    Rz,
    Symbol,
    T,
    X,
    ZZ,
    amplitude_damp,
    bit_flip,
    depolarize,
    phase_damp,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.simulator.kc_simulator import CompiledCircuit, KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator


class TestIdealCorrectness:
    def test_bell_state_vector(self, bell_circuit, kc_simulator):
        result = kc_simulator.simulate(bell_circuit)
        assert np.allclose(result.state_vector, np.array([1, 0, 0, 1]) / np.sqrt(2))

    def test_amplitude_queries(self, bell_circuit, kc_simulator):
        compiled = kc_simulator.compile_circuit(bell_circuit)
        assert compiled.amplitude([0, 0]) == pytest.approx(1 / np.sqrt(2))
        assert compiled.amplitude([1, 0]) == pytest.approx(0.0)

    @pytest.mark.parametrize("order_method", ["min_fill", "hypergraph", "lexicographic"])
    def test_order_methods_agree(self, qaoa_like_circuit, qaoa_resolver, order_method):
        simulator = KnowledgeCompilationSimulator(order_method=order_method)
        state = simulator.simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        expected = StateVectorSimulator().simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        assert np.allclose(state, expected, atol=1e-9)

    def test_elision_does_not_change_amplitudes(self, qaoa_like_circuit, qaoa_resolver):
        elided = KnowledgeCompilationSimulator(elide_internal=True)
        kept = KnowledgeCompilationSimulator(elide_internal=False)
        state_elided = elided.simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        state_kept = kept.simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        assert np.allclose(state_elided, state_kept, atol=1e-9)

    def test_elision_shrinks_circuit(self, qaoa_like_circuit):
        elided = KnowledgeCompilationSimulator(elide_internal=True).compile_circuit(qaoa_like_circuit)
        kept = KnowledgeCompilationSimulator(elide_internal=False).compile_circuit(qaoa_like_circuit)
        assert elided.arithmetic_circuit.num_nodes <= kept.arithmetic_circuit.num_nodes

    def test_deep_single_qubit_interference(self, kc_simulator):
        q = LineQubit(0)
        circuit = Circuit([H(q), H(q)])
        state = kc_simulator.simulate(circuit).state_vector
        assert np.allclose(state, [1.0, 0.0], atol=1e-9)

    def test_phase_only_circuit(self, kc_simulator):
        q = LineQubit(0)
        circuit = Circuit([Rz(0.5)(q)])
        state = kc_simulator.simulate(circuit).state_vector
        assert state[0] == pytest.approx(np.exp(-0.25j))

    def test_non_monomial_two_qubit_gate(self, kc_simulator):
        from repro.circuits import XX

        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), XX(0.7)(q[0], q[1])])
        state = kc_simulator.simulate(circuit).state_vector
        expected = StateVectorSimulator().simulate(circuit).state_vector
        assert np.allclose(state, expected, atol=1e-9)

    def test_clifford_plus_t_circuit(self, kc_simulator):
        q = LineQubit.range(3)
        circuit = Circuit([H(q[0]), T(q[0]), CNOT(q[0], q[1]), CZ(q[1], q[2]), H(q[2]), X(q[1])])
        state = kc_simulator.simulate(circuit).state_vector
        expected = StateVectorSimulator().simulate(circuit).state_vector
        assert np.allclose(state, expected, atol=1e-9)

    def test_nontrivial_initial_bits(self, kc_simulator, bell_circuit):
        compiled = kc_simulator.compile_circuit(bell_circuit, initial_bits=[1, 0])
        assert compiled.amplitude([0, 0]) == pytest.approx(1 / np.sqrt(2))
        assert compiled.amplitude([1, 1]) == pytest.approx(-1 / np.sqrt(2))


class TestParameterReuse:
    def test_compile_once_rebind_many(self, qaoa_like_circuit, kc_simulator):
        compiled = kc_simulator.compile_circuit(qaoa_like_circuit)
        reference_simulator = StateVectorSimulator()
        for gamma, beta in [(0.2, 0.9), (0.7, 0.1), (1.3, 0.5)]:
            resolver = ParamResolver({"gamma": gamma, "beta": beta})
            state = compiled.state_vector(resolver)
            expected = reference_simulator.simulate(qaoa_like_circuit, resolver).state_vector
            assert np.allclose(state, expected, atol=1e-9)

    def test_compiled_circuit_reports_metrics(self, qaoa_like_circuit, kc_simulator):
        compiled = kc_simulator.compile_circuit(qaoa_like_circuit)
        metrics = compiled.compilation_metrics()
        assert metrics["qubits"] == 4
        assert metrics["cnf_clauses"] > 0
        assert metrics["ac_nodes"] == compiled.arithmetic_circuit.num_nodes
        assert metrics["ac_size_bytes"] > 0

    def test_unbound_parameters_raise(self, qaoa_like_circuit, kc_simulator):
        compiled = kc_simulator.compile_circuit(qaoa_like_circuit)
        with pytest.raises((KeyError, ValueError)):
            compiled.state_vector(None)


class TestNoisyCorrectness:
    def test_paper_noisy_bell_density_matrix(self, kc_simulator):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        circuit.append(phase_damp(0.36).on(q[0]))
        circuit.append(CNOT(q[0], q[1]))
        rho = kc_simulator.simulate_density_matrix(circuit).density_matrix
        expected = np.zeros((4, 4), dtype=complex)
        expected[0, 0] = expected[3, 3] = 0.5
        expected[0, 3] = expected[3, 0] = 0.4
        assert np.allclose(rho, expected, atol=1e-9)

    def test_branch_amplitudes_match_table5(self, kc_simulator):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        circuit.append(phase_damp(0.36).on(q[0]))
        circuit.append(CNOT(q[0], q[1]))
        compiled = kc_simulator.compile_circuit(circuit)
        assert compiled.amplitude([0, 0], noise_branches=[0]) == pytest.approx(1 / np.sqrt(2))
        assert compiled.amplitude([1, 1], noise_branches=[0]) == pytest.approx(0.8 / np.sqrt(2))
        assert abs(compiled.amplitude([1, 1], noise_branches=[1])) == pytest.approx(0.6 / np.sqrt(2))
        assert compiled.amplitude([0, 1], noise_branches=[0]) == pytest.approx(0.0)

    @pytest.mark.parametrize(
        "channel_factory",
        [lambda: bit_flip(0.2), lambda: depolarize(0.1), lambda: amplitude_damp(0.3)],
        ids=["bit_flip", "depolarizing", "amplitude_damping"],
    )
    def test_noisy_circuits_match_density_matrix_simulator(self, channel_factory, kc_simulator):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1])])
        circuit.append(channel_factory().on(q[0]))
        rho = kc_simulator.simulate_density_matrix(circuit).density_matrix
        expected = DensityMatrixSimulator().simulate(circuit).density_matrix
        assert np.allclose(rho, expected, atol=1e-9)

    def test_noisy_amplitude_requires_branches(self, noisy_bell_circuit, kc_simulator):
        compiled = kc_simulator.compile_circuit(noisy_bell_circuit)
        with pytest.raises(ValueError):
            compiled.amplitude([0, 0])

    def test_noisy_parameterized_rebind(self, kc_simulator):
        q = LineQubit.range(2)
        theta = Symbol("theta")
        circuit = Circuit([Ry(theta)(q[0]), CNOT(q[0], q[1])])
        circuit.append(depolarize(0.05).on(q[1]))
        compiled = kc_simulator.compile_circuit(circuit)
        for value in (0.4, 1.1):
            resolver = ParamResolver({"theta": value})
            rho = compiled.density_matrix(resolver)
            expected = DensityMatrixSimulator().simulate(circuit, resolver).density_matrix
            assert np.allclose(rho, expected, atol=1e-9)

    def test_probabilities_sum_to_one(self, noisy_bell_circuit, kc_simulator):
        compiled = kc_simulator.compile_circuit(noisy_bell_circuit)
        probabilities = compiled.probabilities()
        assert probabilities.sum() == pytest.approx(1.0)


class TestSampling:
    def test_bell_samples_have_correct_support(self, bell_circuit, kc_simulator):
        samples = kc_simulator.sample(bell_circuit, 300, seed=5)
        assert set(samples.bitstring_counts()) <= {"00", "11"}
        assert len(samples) == 300

    def test_sampling_accepts_compiled_circuit(self, qaoa_like_circuit, qaoa_resolver, kc_simulator):
        compiled = kc_simulator.compile_circuit(qaoa_like_circuit)
        samples = kc_simulator.sample(compiled, 200, resolver=qaoa_resolver, seed=6)
        assert len(samples) == 200

    def test_gibbs_distribution_close_to_exact(self, qaoa_like_circuit, qaoa_resolver, kc_simulator):
        compiled = kc_simulator.compile_circuit(qaoa_like_circuit)
        samples = kc_simulator.sample(
            compiled, 3000, resolver=qaoa_resolver, seed=7, steps_per_sample=4
        )
        empirical = samples.empirical_distribution()
        exact = np.abs(
            StateVectorSimulator().simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        ) ** 2
        assert 0.5 * np.abs(empirical - exact).sum() < 0.1
