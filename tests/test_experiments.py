"""Smoke and schema tests for the experiment harness (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    bell_example,
    figure1_ac_reduction,
    figure3_peaked_distribution,
    figure6_scaling,
    figure7_sampling_error,
    figure8_ideal_performance,
    figure9_noisy_performance,
    format_table,
    rows_to_csv,
    table6_compilation_metrics,
)


class TestCommonInfrastructure:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.000001}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert "10" in text

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_rows_to_csv(self):
        rows = [{"x": 1, "y": "h"}]
        csv_text = rows_to_csv(rows)
        assert csv_text.splitlines()[0] == "x,y"

    def test_experiment_result_summary(self):
        result = ExperimentResult("name", "desc", [{"k": 1}])
        assert "name" in result.summary()
        assert "k" in result.csv()


class TestBellExample:
    def test_density_matrix_matches_equation3(self):
        rho = bell_example.final_density_matrix()
        expected = bell_example.expected_density_matrix()
        assert np.allclose(rho, expected, atol=1e-9)

    def test_tables_have_rows(self):
        results = bell_example.run()
        assert len(results) == 4
        for result in results:
            assert result.rows

    def test_upward_pass_amplitudes(self):
        result = bell_example.upward_pass_amplitudes()
        probabilities = [row["probability"] for row in result.rows]
        assert sum(probabilities) == pytest.approx(1.0, abs=1e-9)


class TestFigure1:
    def test_elision_reduces_ac_size(self):
        result = figure1_ac_reduction.run(num_qubits=3, noise_probability=0.02)
        by_key = {(r["order_method"], r["elide_internal_states"]): r for r in result.rows}
        methods = {r["order_method"] for r in result.rows}
        assert {"lexicographic", "hypergraph"} <= methods
        for method in methods:
            assert by_key[(method, True)]["ac_nodes"] <= by_key[(method, False)]["ac_nodes"]


class TestFigure3:
    def test_distribution_is_peaked_and_sampled(self):
        result = figure3_peaked_distribution.run(num_qubits=5, num_samples=400, seed=2)
        top = result.rows[0]
        uniform = 1.0 / 2 ** 5
        assert top["measurement_probability"] > 2 * uniform
        assert 0.0 <= top["gibbs_sampling_probability"] <= 1.0


class TestFigure6:
    def test_scaling_rows_schema(self):
        result = figure6_scaling.run(scale="small")
        workloads = {row["workload"] for row in result.rows}
        assert workloads == {"rcs", "grover", "shor"}
        for row in result.rows:
            assert row["ac_nodes"] > 0
            assert row["cnf_variables"] > 0
        table4 = figure6_scaling.table4(result)
        assert len(table4.rows) == 3


class TestFigure7:
    def test_kl_decreases_with_samples(self):
        result = figure7_sampling_error.run(num_qubits=4, noisy=False, sample_counts=[20, 2000], seed=3)
        first, last = result.rows[0], result.rows[-1]
        assert last["kl_ideal_sampling"] < first["kl_ideal_sampling"]
        assert last["kl_gibbs_sampling"] < first["kl_gibbs_sampling"] + 1e-9


class TestPerformancePanels:
    def test_figure8_row_schema(self):
        result = figure8_ideal_performance.run(
            "qaoa", 1, qubit_counts=[4], num_samples=20, tensor_network_sample_cap=5
        )
        row = result.rows[0]
        assert {"state_vector_seconds", "tensor_network_seconds", "knowledge_compilation_seconds"} <= set(row)
        assert row["qubits"] == 4

    def test_figure8_vqe_variant(self):
        result = figure8_ideal_performance.run(
            "vqe", 1, qubit_counts=[4], num_samples=10, backends=["state_vector", "knowledge_compilation"]
        )
        assert "state_vector_seconds" in result.rows[0]
        assert "tensor_network_seconds" not in result.rows[0]

    def test_figure9_row_schema(self):
        result = figure9_noisy_performance.run("qaoa", 1, qubit_counts=[3], num_samples=10)
        row = result.rows[0]
        assert "density_matrix_seconds" in row
        assert "knowledge_compilation_seconds" in row

    def test_invalid_workload_rejected(self):
        with pytest.raises(ValueError):
            figure8_ideal_performance.run("annealing", 1)
        with pytest.raises(ValueError):
            figure9_noisy_performance.noisy_variational_circuit("annealing", 4, 1, 0.01, 1)


class TestTable6:
    def test_metrics_schema(self):
        result = table6_compilation_metrics.run(
            ideal_qaoa_qubits=5,
            ideal_vqe_qubits=4,
            noisy_qaoa_qubits=3,
            noisy_vqe_qubits=2,
            include_two_iterations=False,
        )
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["cnf_clauses"] > 0
            assert row["ac_size_bytes"] > 0
