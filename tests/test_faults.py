"""Fault-injection tests: retries, timeouts, worker crashes, memory budgets.

The robustness contract of the fault-tolerant execution engine:

* transient failures, SIGKILLed workers and stuck items retry up to the
  :class:`~repro.api.faults.RetryPolicy`'s budget, and a faulted run
  converges to results **bit-identical** to a fault-free one (retried items
  re-run with their original ``seed + index``);
* a per-item timeout reaps the stuck worker and surfaces a retryable
  :class:`~repro.errors.JobTimeoutError`;
* ``on_error="partial"`` returns the successful rows and records terminal
  failures as :class:`~repro.api.faults.ItemFailure` entries;
* memory budgets reject (or, under auto routing, downgrade) dense items
  *before* any allocation.
"""

import numpy as np
import pytest

from repro import (
    CNOT,
    Circuit,
    FaultInjector,
    H,
    JobError,
    LineQubit,
    MemoryBudgetError,
    RetryPolicy,
    Rx,
    TransientError,
    depolarize,
    device,
    measure,
)
from repro.api import scheduler
from repro.api.faults import DEFAULT_RETRYABLE, NO_RETRY, ItemFailure
from repro.errors import (
    BackendCapabilityError,
    JobTimeoutError,
    UnsupportedCircuitError,
    WorkerCrashedError,
)

RETRY_FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _ghz(n=3):
    qubits = LineQubit.range(n)
    ops = [H(qubits[0])]
    ops += [CNOT(qubits[i], qubits[i + 1]) for i in range(n - 1)]
    ops.append(measure(*qubits))
    return Circuit(ops)


def _rows_equal(a, b):
    return all(
        np.array_equal(
            np.asarray(a[i]["samples"].samples), np.asarray(b[i]["samples"].samples)
        )
        for i in range(len(a))
    )


def _flaky_task(payload):
    if payload.get("attempt", 0) < payload.get("fail_attempts", 0):
        raise TransientError(f"flaky (attempt {payload.get('attempt', 0)})")
    return [(payload["index"], payload["value"])]


def _deterministic_failure(payload):
    raise UnsupportedCircuitError("bad circuit, every time")


class TestRetryPolicy:
    def test_default_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientError("x"))
        assert policy.is_retryable(WorkerCrashedError("x"))
        assert policy.is_retryable(JobTimeoutError("x"))
        assert not policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(BackendCapabilityError("x"))

    def test_custom_retryable_classes(self):
        policy = RetryPolicy(retryable=(ValueError,))
        assert policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(TransientError("x"))

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5, jitter=0.0
        )
        delays = [policy.delay(attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[2] == pytest.approx(0.4)
        assert delays[3] == delays[4] == pytest.approx(0.5)

    def test_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5)
        first = policy.delay(1, key="item-3")
        assert first == policy.delay(1, key="item-3")
        assert first != policy.delay(1, key="item-4")
        assert 0.1 <= first <= 0.15

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_no_retry_policy(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.delay(1) == 0.0

    def test_default_retryable_tuple(self):
        assert TransientError in DEFAULT_RETRYABLE
        assert WorkerCrashedError in DEFAULT_RETRYABLE
        assert JobTimeoutError in DEFAULT_RETRYABLE


class TestSchedulerRetries:
    def test_transient_failures_retry_inline(self):
        tasks = [
            (_flaky_task, {"index": i, "value": i * i, "fail_attempts": i % 3}, (i,), f"item-{i}")
            for i in range(5)
        ]
        job = scheduler.submit(tasks, retry=RETRY_FAST)
        assert job.status() == scheduler.DONE
        assert job.result() == [0, 1, 4, 9, 16]
        assert job.failures() == []

    def test_transient_failures_retry_pooled(self):
        tasks = [
            (_flaky_task, {"index": i, "value": i, "fail_attempts": 1 if i % 2 else 0}, (i,), f"item-{i}")
            for i in range(6)
        ]
        job = scheduler.submit(tasks, jobs=2, retry=RETRY_FAST)
        assert job.result(timeout=60) == list(range(6))

    def test_exhausted_retries_aggregate_failures(self):
        tasks = [
            (_flaky_task, {"index": 0, "value": 0, "fail_attempts": 0}, (0,), "item-0"),
            (_flaky_task, {"index": 1, "value": 1, "fail_attempts": 99}, (1,), "item-1"),
        ]
        job = scheduler.submit(tasks, retry=RETRY_FAST)
        assert job.status() == scheduler.FAILED
        with pytest.raises(JobError) as excinfo:
            job.result()
        assert excinfo.value.failures
        failure = excinfo.value.failures[0]
        assert isinstance(failure, ItemFailure)
        assert failure.indices == (1,)
        assert failure.attempts == RETRY_FAST.max_attempts
        assert isinstance(failure.error, TransientError)

    def test_deterministic_errors_never_retry(self):
        tasks = [(_deterministic_failure, {"index": 0}, (0,), "item-0")]
        job = scheduler.submit(tasks, retry=RETRY_FAST)
        with pytest.raises(JobError) as excinfo:
            job.result()
        assert excinfo.value.failures[0].attempts == 1

    def test_partial_returns_successes_and_records_failures(self):
        tasks = [
            (_flaky_task, {"index": 0, "value": 10, "fail_attempts": 0}, (0,), "item-0"),
            (_flaky_task, {"index": 1, "value": 11, "fail_attempts": 99}, (1,), "item-1"),
            (_flaky_task, {"index": 2, "value": 12, "fail_attempts": 0}, (2,), "item-2"),
        ]
        job = scheduler.submit(tasks, retry=RETRY_FAST, on_error="partial")
        rows = job.result()
        assert rows == [10, 12]
        assert len(job.failures()) == 1
        assert job.failures()[0].indices == (1,)

    def test_on_error_validated(self):
        with pytest.raises(ValueError):
            scheduler.submit([], on_error="ignore")


class TestDeviceFaultInjection:
    def test_transient_faults_converge_bit_identical(self):
        circuit = _ghz()
        clean = device("auto", seed=11).run([circuit] * 4, repetitions=64).result()
        injector = FaultInjector(transient={0: 1, 2: 2})
        job = device("auto", seed=11).run(
            [circuit] * 4,
            repetitions=64,
            retry=RETRY_FAST,
            fault_injector=injector,
        )
        assert _rows_equal(job.result(), clean)
        assert injector.injected == 3

    def test_pooled_transient_faults_converge_bit_identical(self):
        circuit = _ghz()
        clean = device("auto", seed=11).run([circuit] * 6, repetitions=32).result()
        job = device("auto", seed=11).run(
            [circuit] * 6,
            repetitions=32,
            jobs=2,
            retry=RETRY_FAST,
            fault_injector=FaultInjector(transient={1: 1, 4: 1}),
        )
        assert _rows_equal(job.result(timeout=120), clean)

    def test_sigkilled_worker_is_contained_and_retried(self):
        # The injector SIGKILLs the worker running item 1 on its first
        # attempt; the engine must resurrect capacity, re-dispatch only that
        # item, and converge to the fault-free result.
        circuit = _ghz()
        clean = device("auto", seed=11).run([circuit] * 3, repetitions=32).result()
        job = device("auto", seed=11).run(
            [circuit] * 3,
            repetitions=32,
            jobs=2,
            retry=RETRY_FAST,
            fault_injector=FaultInjector(kill={1: 1}),
        )
        assert _rows_equal(job.result(timeout=120), clean)

    def test_worker_crash_without_retry_reports_crash_error(self):
        circuit = _ghz()
        job = device("auto", seed=11).run(
            [circuit] * 2,
            repetitions=16,
            jobs=2,
            retry=NO_RETRY,
            fault_injector=FaultInjector(kill={0: 1}),
        )
        with pytest.raises(JobError) as excinfo:
            job.result(timeout=120)
        assert any(
            isinstance(failure.error, WorkerCrashedError)
            for failure in excinfo.value.failures
        )

    def test_item_timeout_reaps_stuck_worker_then_retry_converges(self):
        circuit = _ghz()
        clean = device("auto", seed=11).run([circuit] * 2, repetitions=16).result()
        job = device("auto", seed=11).run(
            [circuit] * 2,
            repetitions=16,
            item_timeout=2.0,
            retry=RETRY_FAST,
            fault_injector=FaultInjector(hang={0: 1}, hang_seconds=30.0),
        )
        assert _rows_equal(job.result(timeout=120), clean)

    def test_item_timeout_without_retry_raises_timeout_failure(self):
        circuit = _ghz()
        job = device("auto", seed=11).run(
            [circuit],
            repetitions=16,
            item_timeout=1.0,
            retry=NO_RETRY,
            fault_injector=FaultInjector(hang={0: 1}, hang_seconds=30.0),
        )
        with pytest.raises(JobError) as excinfo:
            job.result(timeout=60)
        assert any(
            isinstance(failure.error, JobTimeoutError)
            for failure in excinfo.value.failures
        )

    def test_bad_item_timeout_rejected(self):
        with pytest.raises(ValueError):
            device("auto").run([_ghz()], repetitions=4, item_timeout="forever")

    def test_auto_item_timeout_resolves_from_capabilities(self):
        job = device("auto", seed=5).run(
            [_ghz()], repetitions=8, item_timeout="auto", retry=NO_RETRY
        )
        assert job.result(timeout=60)


class TestMemoryBudget:
    def _noisy_non_clifford(self):
        qubits = LineQubit.range(2)
        return Circuit(
            [
                H(qubits[0]),
                Rx(0.3).on(qubits[1]),
                CNOT(qubits[0], qubits[1]),
                depolarize(0.01).on(qubits[0]),
            ]
        )

    def test_fixed_backend_over_budget_raises(self):
        with pytest.raises(MemoryBudgetError):
            device("state_vector", seed=1).run(
                [_ghz(3)], repetitions=8, memory_budget=16
            )

    def test_auto_downgrades_density_matrix_to_trajectory(self):
        circuit = self._noisy_non_clifford()
        dev = device("auto", seed=3)
        baseline = dev.run([circuit], observables=["probabilities"]).result()[0]
        assert baseline["backend"] == "density_matrix"
        # 2 qubits: density matrix needs 16*4^2 = 256 B; trajectory 16*2^2.
        row = dev.run(
            [circuit], observables=["probabilities"], memory_budget=128
        ).result()[0]
        assert row["backend"] == "trajectory"
        assert "memory budget" in row["reason"]

    def test_auto_without_cheaper_backend_raises(self):
        circuit = self._noisy_non_clifford()
        with pytest.raises(MemoryBudgetError):
            device("auto", seed=3).run(
                [circuit], observables=["probabilities"], memory_budget=32
            )

    def test_partial_turns_budget_rejection_into_failure_record(self):
        job = device("state_vector", seed=1).run(
            [_ghz(3)], repetitions=8, memory_budget=16, on_error="partial"
        )
        assert job.status() == scheduler.FAILED
        assert len(job.result()) == 0
        assert len(job.failures()) == 1
        assert isinstance(job.failures()[0].error, MemoryBudgetError)

    def test_partial_mixes_budget_rejections_with_successes(self):
        small = _ghz(2)
        big = _ghz(3)
        budget = 16 * 2**2  # exactly the 2-qubit state vector
        job = device("state_vector", seed=1).run(
            [small, big, small], repetitions=8, memory_budget=budget, on_error="partial"
        )
        rows = job.result()
        assert [row["index"] for row in rows] == [0, 2]
        assert job.failures()[0].indices == (1,)

    def test_stabilizer_exempt_from_budget(self):
        # Clifford circuits route to the poly(n) tableau: no dense footprint.
        row = device("auto", seed=1).run(
            [_ghz(4)], repetitions=8, memory_budget=16
        ).result()[0]
        assert row["backend"] == "stabilizer"


class TestFaultInjector:
    def test_transient_schedule_honoured(self):
        injector = FaultInjector(transient={0: 2})
        with pytest.raises(TransientError):
            injector(0, 0)
        with pytest.raises(TransientError):
            injector(0, 1)
        injector(0, 2)  # third attempt passes
        injector(1, 0)  # unscheduled item passes
        assert injector.injected == 2

    def test_rate_mode_is_deterministic(self):
        injected_a = []
        injected_b = []
        for target in (injected_a, injected_b):
            injector = FaultInjector(rate=0.5, seed=42)
            for index in range(32):
                try:
                    injector(index, 0)
                except TransientError:
                    target.append(index)
        assert injected_a == injected_b
        assert 4 < len(injected_a) < 28

    def test_rate_only_faults_first_attempts(self):
        injector = FaultInjector(rate=1.0, seed=1)
        with pytest.raises(TransientError):
            injector(0, 0)
        injector(0, 1)  # retries always pass in rate mode

    def test_injector_pickles(self):
        import pickle

        injector = FaultInjector(transient={1: 1}, kill={2: 1}, rate=0.1, seed=3)
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.transient == {1: 1}
        assert clone.kill == {2: 1}
        assert clone.rate == 0.1
