"""Tests for circuit-level noise models."""

import numpy as np
import pytest

from repro.circuits import CNOT, TOFFOLI, Circuit, H, LineQubit, X, measure
from repro.circuits.noise import DepolarizingChannel, NoiseOperation
from repro.circuits.noise_model import NoiseModel
from repro.densitymatrix import DensityMatrixSimulator
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator


@pytest.fixture
def bell_with_measurement():
    q = LineQubit.range(2)
    return Circuit([H(q[0]), CNOT(q[0], q[1]), measure(q[0], q[1])])


class TestGateClassNoise:
    def test_two_qubit_gates_get_noisier_channels(self, bell_with_measurement):
        model = NoiseModel.depolarizing(single_qubit_probability=0.001, two_qubit_probability=0.02)
        noisy = model.apply(bell_with_measurement)
        channels = [op.channel for op in noisy.noise_operations()]
        # 1 channel after H + 2 channels after CNOT.
        assert len(channels) == 3
        probabilities = sorted(c.value for c in channels)
        assert probabilities == [0.001, 0.02, 0.02]

    def test_gate_count_preserved(self, bell_with_measurement):
        model = NoiseModel.depolarizing()
        noisy = model.apply(bell_with_measurement)
        assert noisy.gate_count() == bell_with_measurement.gate_count()
        assert len(noisy.measurement_operations()) == 1

    def test_disabled_classes_add_nothing(self, bell_with_measurement):
        model = NoiseModel(single_qubit_noise=lambda: DepolarizingChannel(0.01))
        noisy = model.apply(bell_with_measurement)
        # Only the H gate gets a channel; the CNOT class is disabled.
        assert len(noisy.noise_operations()) == 1

    def test_callable_shorthand(self, bell_with_measurement):
        model = NoiseModel.depolarizing()
        assert model(bell_with_measurement).has_noise

    def test_multi_qubit_noise_defaults_to_two_qubit(self):
        q = LineQubit.range(3)
        circuit = Circuit([TOFFOLI(q[0], q[1], q[2])])
        model = NoiseModel(two_qubit_noise=lambda: DepolarizingChannel(0.02))
        assert len(model.apply(circuit).noise_operations()) == 3

    def test_explicit_none_disables_multi_qubit_noise(self):
        """Regression: ``multi_qubit_noise=None`` must win over ``two_qubit_noise``."""
        q = LineQubit.range(3)
        circuit = Circuit([CNOT(q[0], q[1]), TOFFOLI(q[0], q[1], q[2])])
        model = NoiseModel(
            two_qubit_noise=lambda: DepolarizingChannel(0.02),
            multi_qubit_noise=None,
        )
        noisy = model.apply(circuit)
        # The CNOT still gets its two channels; the Toffoli gets none.
        assert len(noisy.noise_operations()) == 2
        toffoli_qubit = q[2]
        assert all(toffoli_qubit not in op.qubits for op in noisy.noise_operations())


class TestMeasurementAndIdleNoise:
    def test_measurement_noise_precedes_measurement(self, bell_with_measurement):
        model = NoiseModel.depolarizing(measurement_probability=0.03)
        noisy = model.apply(bell_with_measurement)
        operations = noisy.all_operations()
        measurement_index = next(i for i, op in enumerate(operations) if op.is_measurement)
        preceding_noise = [
            op for op in operations[:measurement_index] if isinstance(op, NoiseOperation)
        ]
        assert any(op.channel.name == "bit_flip" for op in preceding_noise)

    def test_readout_error_changes_distribution(self):
        q = LineQubit(0)
        circuit = Circuit([X(q), measure(q)])
        model = NoiseModel(measurement_noise=lambda: __import__("repro.circuits", fromlist=["bit_flip"]).bit_flip(0.2))
        noisy = model.apply(circuit)
        probabilities = DensityMatrixSimulator().simulate(noisy).probabilities()
        assert probabilities[0] == pytest.approx(0.2)

    def test_idle_noise_applied_to_waiting_qubits(self):
        q = LineQubit.range(3)
        # Moment 0: H(q0) and X(q2) in parallel while q1 idles;
        # moment 1: CNOT(q0, q1) while q2 idles.
        circuit = Circuit([H(q[0]), X(q[2]), CNOT(q[0], q[1])])
        model = NoiseModel.thermal_relaxation(amplitude_damping=0.01, phase_damping=0.02)
        noisy = model.apply(circuit)
        idle_targets = [op.qubits[0] for op in noisy.noise_operations()]
        assert q[2] in idle_targets and q[1] in idle_targets
        # One idle moment each for q1 and q2, two damping channels per idle moment.
        assert len([t for t in idle_targets if t == q[2]]) == 2
        assert len([t for t in idle_targets if t == q[1]]) == 2


class TestNoiseModelEndToEnd:
    def test_kc_simulator_matches_density_matrix_under_model(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1])])
        model = NoiseModel.depolarizing(single_qubit_probability=0.01, two_qubit_probability=0.05)
        noisy = model.apply(circuit)
        kc_rho = KnowledgeCompilationSimulator(seed=1).simulate_density_matrix(noisy).density_matrix
        dm_rho = DensityMatrixSimulator().simulate(noisy).density_matrix
        assert np.allclose(kc_rho, dm_rho, atol=1e-9)

    def test_repr(self):
        assert "1q" in repr(NoiseModel.depolarizing())
        assert "idle" in repr(NoiseModel.thermal_relaxation())

    def test_thermal_relaxation_idle_channels_are_introspectable(self):
        """Regression: both damping factories live in ``idle_noise`` (no hidden attribute)."""
        model = NoiseModel.thermal_relaxation(amplitude_damping=0.01, phase_damping=0.02)
        channels = [factory() for factory in model.idle_noise]
        assert [c.name for c in channels] == ["amplitude_damping", "phase_damping"]
        assert [c.value for c in channels] == [0.01, 0.02]
        assert not hasattr(model, "_extra_idle")

    def test_repr_names_both_idle_channels(self):
        text = repr(NoiseModel.thermal_relaxation())
        assert "amplitude_damping" in text and "phase_damping" in text

    def test_single_idle_factory_still_accepted(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1]), H(q[0])])
        model = NoiseModel(idle_noise=lambda: DepolarizingChannel(0.01))
        # q1 idles in moments 0 and 2.
        assert len(model.apply(circuit).noise_operations()) == 2
