"""Tests for elimination/decision ordering heuristics."""

import pytest

from repro.bayesnet import (
    elimination_order,
    hypergraph_partition_order,
    induced_width,
    lexicographic_order,
    min_degree_order,
    min_fill_order,
)


def chain_graph(n):
    adjacency = {i: set() for i in range(n)}
    for i in range(n - 1):
        adjacency[i].add(i + 1)
        adjacency[i + 1].add(i)
    return adjacency


def grid_graph(rows, cols):
    adjacency = {}
    for r in range(rows):
        for c in range(cols):
            adjacency[(r, c)] = set()
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                adjacency[(r, c)].add((r, c + 1))
                adjacency[(r, c + 1)].add((r, c))
            if r + 1 < rows:
                adjacency[(r, c)].add((r + 1, c))
                adjacency[(r + 1, c)].add((r, c))
    return adjacency


ALL_METHODS = ["min_degree", "min_fill", "lexicographic", "hypergraph"]


class TestOrderValidity:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_order_is_permutation(self, method):
        adjacency = grid_graph(3, 3)
        order = elimination_order(adjacency, method)
        assert sorted(order, key=str) == sorted(adjacency.keys(), key=str)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            elimination_order(chain_graph(4), "bogus")

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_empty_graph(self, method):
        assert elimination_order({}, method) == []

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_disconnected_graph(self, method):
        adjacency = {**chain_graph(3), **{f"x{i}": set() for i in range(3)}}
        order = elimination_order(adjacency, method)
        assert len(order) == 6


class TestOrderQuality:
    def test_min_degree_on_chain_has_width_one(self):
        adjacency = chain_graph(10)
        order = min_degree_order(adjacency)
        assert induced_width(adjacency, order) == 1

    def test_min_fill_on_chain_has_width_one(self):
        adjacency = chain_graph(10)
        assert induced_width(adjacency, min_fill_order(adjacency)) == 1

    def test_min_fill_beats_lexicographic_on_grid(self):
        adjacency = grid_graph(4, 4)
        lexicographic_width = induced_width(adjacency, lexicographic_order(adjacency))
        min_fill_width = induced_width(adjacency, min_fill_order(adjacency))
        assert min_fill_width <= lexicographic_width

    def test_grid_width_bounded_by_smaller_dimension(self):
        adjacency = grid_graph(3, 5)
        width = induced_width(adjacency, min_fill_order(adjacency))
        assert width <= 4

    def test_induced_width_of_complete_graph(self):
        n = 5
        adjacency = {i: {j for j in range(n) if j != i} for i in range(n)}
        assert induced_width(adjacency, list(range(n))) == n - 1


class TestHypergraphOrder:
    def test_separator_vertices_come_early_on_two_cliques(self):
        # Two triangles joined by a single bridge vertex: the bridge is the separator.
        adjacency = {
            "a1": {"a2", "a3"},
            "a2": {"a1", "a3"},
            "a3": {"a1", "a2", "bridge"},
            "bridge": {"a3", "b1"},
            "b1": {"bridge", "b2", "b3"},
            "b2": {"b1", "b3"},
            "b3": {"b1", "b2"},
        }
        order = hypergraph_partition_order(adjacency)
        assert set(order) == set(adjacency)
        # The bridge or one of its endpoints must appear in the first half of the order.
        cut_vertices = {"bridge", "a3", "b1"}
        assert any(vertex in cut_vertices for vertex in order[: len(order) // 2])
