"""Tests for gate definitions: unitarity, monomial structure, operations."""

import math

import numpy as np
import pytest

from repro.circuits import (
    CCZ,
    CNOT,
    CZ,
    FREDKIN,
    H,
    I,
    ISWAP,
    SWAP,
    TOFFOLI,
    X,
    Y,
    Z,
    S,
    T,
    ControlledGate,
    CPhase,
    LineQubit,
    MatrixGate,
    ParamResolver,
    PermutationGate,
    PhaseShift,
    Rx,
    Ry,
    Rz,
    Symbol,
    XX,
    ZZ,
    is_monomial_matrix,
    measure,
    monomial_action,
    standard_gate_by_name,
)

ALL_CONSTANT_GATES = [I, X, Y, Z, H, S, T, CNOT, CZ, SWAP, ISWAP, TOFFOLI, CCZ, FREDKIN]


class TestUnitarity:
    @pytest.mark.parametrize("gate", ALL_CONSTANT_GATES, ids=lambda g: g.name)
    def test_constant_gates_are_unitary(self, gate):
        unitary = gate.unitary()
        dim = unitary.shape[0]
        assert np.allclose(unitary @ unitary.conj().T, np.eye(dim), atol=1e-9)

    @pytest.mark.parametrize("angle", [0.0, 0.3, math.pi / 2, math.pi, 2.2])
    @pytest.mark.parametrize("gate_type", [Rx, Ry, Rz, PhaseShift, CPhase, ZZ, XX])
    def test_rotation_gates_are_unitary(self, gate_type, angle):
        unitary = gate_type(angle).unitary()
        dim = unitary.shape[0]
        assert np.allclose(unitary @ unitary.conj().T, np.eye(dim), atol=1e-9)


class TestGateSemantics:
    def test_hadamard_squares_to_identity(self):
        assert np.allclose(H.unitary() @ H.unitary(), np.eye(2), atol=1e-9)

    def test_x_flips_basis_state(self):
        assert np.allclose(X.unitary() @ np.array([1, 0]), np.array([0, 1]))

    def test_cnot_action(self):
        unitary = CNOT.unitary()
        # |10> -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        assert np.allclose(unitary @ state, np.eye(4)[3])

    def test_rz_is_diagonal(self):
        unitary = Rz(0.7).unitary()
        assert np.allclose(unitary, np.diag(np.diag(unitary)))

    def test_rx_at_pi_equals_minus_i_x(self):
        assert np.allclose(Rx(math.pi).unitary(), -1j * X.unitary(), atol=1e-9)

    def test_zz_diagonal_phases(self):
        theta = 0.9
        unitary = ZZ(theta).unitary()
        assert np.allclose(np.abs(np.diag(unitary)), np.ones(4))
        assert unitary[0, 0] == pytest.approx(np.exp(-1j * theta / 2))
        assert unitary[1, 1] == pytest.approx(np.exp(1j * theta / 2))

    def test_toffoli_flips_target_only_when_both_controls_set(self):
        unitary = TOFFOLI.unitary()
        state = np.zeros(8)
        state[6] = 1.0  # |110>
        assert np.allclose(unitary @ state, np.eye(8)[7])
        state = np.zeros(8)
        state[4] = 1.0  # |100>
        assert np.allclose(unitary @ state, np.eye(8)[4])


class TestMonomialStructure:
    @pytest.mark.parametrize("gate", [X, Z, S, T, CNOT, CZ, SWAP, TOFFOLI, CCZ, ISWAP])
    def test_monomial_gates_detected(self, gate):
        assert gate.is_monomial()

    @pytest.mark.parametrize("gate", [H, Rx(0.3), Ry(0.4), XX(0.5)])
    def test_non_monomial_gates_detected(self, gate):
        assert not gate.is_monomial()

    def test_parameterized_rz_structurally_monomial(self):
        assert Rz(Symbol("t")).is_monomial()
        assert ZZ(Symbol("t")).is_monomial()
        assert not Rx(Symbol("t")).is_monomial()

    def test_monomial_action_of_cnot(self):
        perm, phases = monomial_action(CNOT.unitary())
        assert perm == [0, 1, 3, 2]
        assert all(p == pytest.approx(1.0) for p in phases)

    def test_monomial_action_rejects_hadamard(self):
        assert not is_monomial_matrix(H.unitary())
        with pytest.raises(ValueError):
            monomial_action(H.unitary())


class TestParameterizedGates:
    def test_parameters_reported(self):
        gamma = Symbol("gamma")
        gate = Rz(2 * gamma)
        assert gate.is_parameterized
        assert gamma in gate.parameters

    def test_resolve_produces_concrete_gate(self):
        gate = Rx(Symbol("t"))
        resolved = gate.resolve(ParamResolver({"t": 0.4}))
        assert not resolved.is_parameterized
        assert np.allclose(resolved.unitary(), Rx(0.4).unitary())

    def test_unitary_with_resolver(self):
        gate = ZZ(2 * Symbol("g"))
        unitary = gate.unitary(ParamResolver({"g": 0.25}))
        assert np.allclose(unitary, ZZ(0.5).unitary())


class TestControlledAndPermutationGates:
    def test_controlled_x_is_cnot(self):
        assert np.allclose(ControlledGate(X).unitary(), CNOT.unitary())

    def test_controlled_gate_parameter_passthrough(self):
        gate = ControlledGate(Rz(Symbol("t")))
        assert gate.is_parameterized
        resolved = gate.resolve(ParamResolver({"t": 0.3}))
        assert not resolved.is_parameterized

    def test_permutation_gate_unitary(self):
        gate = PermutationGate("cycle", 2, [1, 2, 3, 0])
        unitary = gate.unitary()
        state = np.zeros(4)
        state[0] = 1.0
        assert np.allclose(unitary @ state, np.eye(4)[1])
        assert gate.is_monomial()

    def test_permutation_gate_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            PermutationGate("bad", 1, [0, 0])

    def test_matrix_gate_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            MatrixGate("bad", np.array([[1, 1], [0, 1]]))


class TestOperations:
    def test_operation_qubit_count_checked(self):
        q = LineQubit.range(3)
        with pytest.raises(ValueError):
            CNOT(q[0])
        with pytest.raises(ValueError):
            H(q[0], q[1])

    def test_operation_distinct_qubits(self):
        q = LineQubit(0)
        with pytest.raises(ValueError):
            CNOT(q, q)

    def test_measure_helper(self):
        q = LineQubit.range(2)
        op = measure(*q, key="result")
        assert op.is_measurement
        assert op.qubits == tuple(q)

    def test_measure_requires_qubits(self):
        with pytest.raises(ValueError):
            measure()

    def test_with_qubits(self):
        q = LineQubit.range(4)
        op = CNOT(q[0], q[1]).with_qubits(q[2], q[3])
        assert op.qubits == (q[2], q[3])

    def test_standard_gate_lookup(self):
        assert standard_gate_by_name("cx") is CNOT
        assert standard_gate_by_name("H") is H
        with pytest.raises(KeyError):
            standard_gate_by_name("nope")
