"""Tests for arithmetic-circuit evaluation and differentiation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CNF
from repro.knowledge import ArithmeticCircuit, KnowledgeCompiler, NNFManager, smooth


def compile_to_ac(cnf):
    compiler = KnowledgeCompiler()
    root, manager, _ = compiler.compile(cnf)
    # Smooth over *all* variables (including ones absent from every clause) so
    # the weighted model count ranges over complete assignments, matching the
    # brute-force oracle below.
    root = smooth(manager, root, list(range(1, cnf.num_vars + 1)))
    return ArithmeticCircuit(root, cnf.num_vars)


def brute_force_wmc(cnf, literal_values):
    variables = sorted(set(range(1, cnf.num_vars + 1)))
    total = 0.0 + 0j
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if not cnf.is_satisfied_by(assignment):
            continue
        weight = 1.0 + 0j
        for variable in variables:
            weight *= literal_values[variable, 1 if assignment[variable] else 0]
        total += weight
    return total


def random_cnf(num_vars, num_clauses, seed):
    rng = np.random.default_rng(seed)
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        width = int(rng.integers(1, 4))
        variables = rng.choice(np.arange(1, num_vars + 1), size=min(width, num_vars), replace=False)
        cnf.add_clause([int(v) if rng.random() < 0.5 else -int(v) for v in variables])
    return cnf


def random_literal_values(ac, seed, complex_values=True):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.1, 1.5, size=(ac.num_vars + 1, 2)).astype(complex)
    if complex_values:
        values = values + 1j * rng.uniform(-0.5, 0.5, size=values.shape)
    return values


class TestEvaluation:
    def test_model_count_with_unit_weights(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2])
        cnf.add_clause([-2, 3])
        ac = compile_to_ac(cnf)
        count = ac.evaluate(ac.default_literal_values())
        expected = sum(
            1
            for bits in itertools.product([False, True], repeat=3)
            if cnf.is_satisfied_by(dict(zip([1, 2, 3], bits)))
        )
        assert count == pytest.approx(expected)

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_weighted_model_count_matches_brute_force(self, seed):
        cnf = random_cnf(num_vars=5, num_clauses=6, seed=seed)
        ac = compile_to_ac(cnf)
        literal_values = random_literal_values(ac, seed + 1)
        assert ac.evaluate(literal_values) == pytest.approx(brute_force_wmc(cnf, literal_values))

    def test_evidence_via_zeroed_indicators(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        ac = compile_to_ac(cnf)
        values = ac.default_literal_values()
        values[1, 0] = 0.0  # forbid var1 = False
        values[2, 1] = 0.0  # forbid var2 = True
        assert ac.evaluate(values) == pytest.approx(1.0)  # only model: 1=T, 2=F

    def test_stats_and_text_export(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        ac = compile_to_ac(cnf)
        stats = ac.stats()
        assert stats["nodes"] == ac.num_nodes
        assert stats["edges"] == ac.num_edges
        text = ac.to_nnf_text()
        assert text.startswith("nnf ")
        assert stats["size_bytes"] == len(text.encode("utf-8"))


class TestDerivatives:
    def test_derivatives_match_finite_differences(self):
        cnf = random_cnf(num_vars=4, num_clauses=5, seed=11)
        ac = compile_to_ac(cnf)
        literal_values = random_literal_values(ac, seed=12, complex_values=False)
        value, derivatives = ac.evaluate_with_derivatives(literal_values)
        step = 1e-6
        for variable in range(1, ac.num_vars + 1):
            for sign in (0, 1):
                perturbed = literal_values.copy()
                perturbed[variable, sign] += step
                numeric = (ac.evaluate(perturbed) - value) / step
                assert derivatives[variable, sign] == pytest.approx(numeric, rel=1e-3, abs=1e-5)

    def test_derivatives_with_zero_values(self):
        """The downward pass must handle zero-valued children exactly (evidence zeros)."""
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        ac = compile_to_ac(cnf)
        values = ac.default_literal_values()
        values[1, 1] = 0.0  # forbid var1 = True
        root_value, derivatives = ac.evaluate_with_derivatives(values)
        # With var1 = True forbidden, models are (F,T) only -> WMC = 1.
        assert root_value == pytest.approx(1.0)
        # d/d lambda_{1=T} recovers the WMC with var1 set to True: models (T,T) and (T,F) -> 2.
        assert derivatives[1, 1] == pytest.approx(2.0)

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=15, deadline=None)
    def test_derivative_identity_property(self, seed):
        """For multilinear WMC: f = lambda_x * df/dlambda_x + lambda_notx * df/dlambda_notx."""
        cnf = random_cnf(num_vars=4, num_clauses=5, seed=seed)
        ac = compile_to_ac(cnf)
        literal_values = random_literal_values(ac, seed + 7)
        value, derivatives = ac.evaluate_with_derivatives(literal_values)
        for variable in range(1, ac.num_vars + 1):
            reconstructed = (
                literal_values[variable, 1] * derivatives[variable, 1]
                + literal_values[variable, 0] * derivatives[variable, 0]
            )
            assert reconstructed == pytest.approx(value, rel=1e-9, abs=1e-9)

    def test_complex_weights_supported(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        ac = compile_to_ac(cnf)
        values = ac.default_literal_values()
        values[1, 1] = 1j
        values[2, 0] = -0.5 + 0.5j
        assert ac.evaluate(values) == pytest.approx(brute_force_wmc(cnf, values))
