"""Tests for the Shor order-finding kernel and classical post-processing."""

import numpy as np
import pytest

from repro.algorithms import (
    classical_postprocess,
    expected_counting_distribution,
    modular_multiplication_permutation,
    multiplicative_order,
    order_finding_circuit,
    shor_factor,
)
from repro.statevector import StateVectorSimulator


class TestClassicalPieces:
    def test_multiplicative_order(self):
        assert multiplicative_order(2, 15) == 4
        assert multiplicative_order(7, 15) == 4
        assert multiplicative_order(2, 5) == 4
        assert multiplicative_order(4, 5) == 2

    def test_multiplicative_order_requires_coprime(self):
        with pytest.raises(ValueError):
            multiplicative_order(3, 15)

    def test_modular_multiplication_permutation(self):
        permutation = modular_multiplication_permutation(2, 5, 3)
        assert permutation[1] == 2
        assert permutation[3] == 1  # 2*3 mod 5
        assert permutation[5] == 5  # outside the modulus: fixed point
        assert sorted(permutation) == list(range(8))

    def test_modular_multiplication_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            modular_multiplication_permutation(3, 6, 3)

    def test_classical_postprocess_factors_15(self):
        # With 8 counting qubits, order 4 gives peaks at multiples of 64.
        factors = classical_postprocess(64, 8, 15, 7)
        assert factors is not None
        assert sorted(factors) == [3, 5]

    def test_classical_postprocess_rejects_zero(self):
        assert classical_postprocess(0, 8, 15, 7) is None

    def test_expected_counting_distribution_peaks(self):
        distribution = expected_counting_distribution(order=2, num_counting_qubits=3)
        assert distribution.sum() == pytest.approx(1.0)
        # Peaks at 0 and 4 (multiples of 2^3 / 2).
        assert distribution[0] == pytest.approx(0.5)
        assert distribution[4] == pytest.approx(0.5)


class TestOrderFindingCircuit:
    def test_counting_distribution_matches_analytic(self):
        instance = order_finding_circuit(4, 5, num_counting_qubits=4)
        state = StateVectorSimulator().simulate(instance.circuit).state_vector
        probabilities = np.abs(state) ** 2
        t = instance.metadata["num_counting_qubits"]
        work = instance.metadata["num_work_qubits"]
        counting_marginal = probabilities.reshape(2 ** t, 2 ** work).sum(axis=1)
        expected = instance.metadata["counting_distribution"]
        assert np.allclose(counting_marginal, expected, atol=1e-8)

    def test_order_two_case(self):
        # a = 4, N = 5 has order 2: peaks at 0 and 2^(t-1).
        instance = order_finding_circuit(4, 5, num_counting_qubits=3)
        state = StateVectorSimulator().simulate(instance.circuit).state_vector
        probabilities = np.abs(state) ** 2
        t = 3
        work = instance.metadata["num_work_qubits"]
        counting = probabilities.reshape(2 ** t, 2 ** work).sum(axis=1)
        assert counting[0] == pytest.approx(0.5, abs=1e-6)
        assert counting[4] == pytest.approx(0.5, abs=1e-6)

    def test_end_to_end_factoring_of_15(self):
        factors = shor_factor(15, 7, StateVectorSimulator(seed=3), num_counting_qubits=5, repetitions=48, seed=3)
        assert factors is not None
        assert sorted(factors) == [3, 5]
