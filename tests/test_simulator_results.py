"""Tests for the shared simulator result containers."""

import numpy as np
import pytest

from repro.circuits import LineQubit
from repro.simulator import DensityMatrixResult, SampleResult, StateVectorResult


class TestSampleResult:
    def test_counts_and_histogram(self):
        qubits = LineQubit.range(2)
        result = SampleResult(qubits, [(0, 0), (1, 1), (1, 1)])
        assert result.counts()[(1, 1)] == 2
        assert result.bitstring_counts() == {"00": 1, "11": 2}
        assert result.most_common(1)[0][0] == (1, 1)

    def test_empirical_distribution(self):
        qubits = LineQubit.range(2)
        result = SampleResult(qubits, [(0, 1), (0, 1), (1, 0), (1, 1)])
        distribution = result.empirical_distribution()
        assert distribution[1] == pytest.approx(0.5)
        assert distribution.sum() == pytest.approx(1.0)

    def test_expectation_of_bit(self):
        qubits = LineQubit.range(1)
        result = SampleResult(qubits, [(0,), (1,), (1,), (1,)])
        assert result.expectation_of_bit(0) == pytest.approx(0.75)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            SampleResult(LineQubit.range(2), [(0,)])

    def test_empty_expectation_raises(self):
        result = SampleResult(LineQubit.range(1), [])
        with pytest.raises(ValueError):
            result.expectation_of_bit(0)


class TestStateVectorResult:
    def test_probabilities_and_amplitude(self):
        qubits = LineQubit.range(1)
        result = StateVectorResult(qubits, np.array([1, 1j]) / np.sqrt(2))
        assert np.allclose(result.probabilities(), [0.5, 0.5])
        assert result.amplitude([1]) == pytest.approx(1j / np.sqrt(2))

    def test_density_matrix(self):
        qubits = LineQubit.range(1)
        result = StateVectorResult(qubits, np.array([1, 0], dtype=complex))
        assert np.allclose(result.density_matrix(), [[1, 0], [0, 0]])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            StateVectorResult(LineQubit.range(2), np.zeros(3))

    def test_sampling(self):
        qubits = LineQubit.range(1)
        result = StateVectorResult(qubits, np.array([0, 1], dtype=complex))
        samples = result.sample(10, np.random.default_rng(0))
        assert samples.bitstring_counts() == {"1": 10}

    def test_dirac_notation_skips_zero_terms(self):
        qubits = LineQubit.range(2)
        result = StateVectorResult(qubits, np.array([1, 0, 0, 0], dtype=complex))
        notation = result.dirac_notation()
        assert "|00>" in notation and "|01>" not in notation


class TestDensityMatrixResult:
    def test_probabilities_and_purity(self):
        qubits = LineQubit.range(1)
        rho = np.array([[0.5, 0], [0, 0.5]], dtype=complex)
        result = DensityMatrixResult(qubits, rho)
        assert np.allclose(result.probabilities(), [0.5, 0.5])
        assert result.purity() == pytest.approx(0.5)

    def test_probability_of(self):
        qubits = LineQubit.range(2)
        rho = np.zeros((4, 4), dtype=complex)
        rho[2, 2] = 1.0
        result = DensityMatrixResult(qubits, rho)
        assert result.probability_of([1, 0]) == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DensityMatrixResult(LineQubit.range(1), np.zeros((3, 3)))

    def test_sampling_from_diagonal(self):
        qubits = LineQubit.range(1)
        rho = np.array([[0.2, 0], [0, 0.8]], dtype=complex)
        result = DensityMatrixResult(qubits, rho)
        samples = result.sample(2000, np.random.default_rng(1))
        ones = samples.bitstring_counts().get("1", 0) / 2000
        assert 0.74 < ones < 0.86
