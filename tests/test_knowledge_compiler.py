"""Tests for the DPLL knowledge compiler (CNF -> d-DNNF)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CNF
from repro.knowledge import (
    KnowledgeCompiler,
    NNFManager,
    check_decomposability,
    count_nodes_and_edges,
    evaluate_boolean,
    split_components,
    unit_propagate,
)


def brute_force_models(cnf):
    variables = sorted(set(range(1, cnf.num_vars + 1)))
    models = []
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.is_satisfied_by(assignment):
            models.append(assignment)
    return models


def compiled_agrees_with_cnf(cnf, order_method="min_fill"):
    compiler = KnowledgeCompiler(order_method=order_method)
    root, manager, stats = compiler.compile(cnf)
    variables = sorted(set(range(1, cnf.num_vars + 1)))
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        expected = cnf.is_satisfied_by(assignment)
        compiled = evaluate_boolean(root, assignment)
        if expected != compiled:
            return False
    return True


def random_cnf(num_vars, num_clauses, seed, max_width=3):
    rng = np.random.default_rng(seed)
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        width = int(rng.integers(1, max_width + 1))
        variables = rng.choice(np.arange(1, num_vars + 1), size=min(width, num_vars), replace=False)
        literals = [int(v) if rng.random() < 0.5 else -int(v) for v in variables]
        cnf.add_clause(literals)
    return cnf


class TestUnitPropagate:
    def test_propagates_chains(self):
        residual, implied, conflict = unit_propagate([(1,), (-1, 2), (-2, 3)])
        assert not conflict
        assert implied == {1, 2, 3}
        assert residual == frozenset()

    def test_detects_conflict(self):
        _, _, conflict = unit_propagate([(1,), (-1,)])
        assert conflict

    def test_leaves_non_units_alone(self):
        residual, implied, conflict = unit_propagate([(1, 2), (2, 3)])
        assert not conflict
        assert implied == set()
        assert len(residual) == 2


class TestSplitComponents:
    def test_disconnected_clauses_split(self):
        components = split_components(frozenset({(1, 2), (3, 4), (2, -1)}))
        assert len(components) == 2

    def test_connected_clauses_stay_together(self):
        components = split_components(frozenset({(1, 2), (2, 3), (3, 4)}))
        assert len(components) == 1


class TestCompilerCorrectness:
    def test_single_clause(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        assert compiled_agrees_with_cnf(cnf)

    def test_exactly_one_constraint(self):
        cnf = CNF(3)
        cnf.add_exactly_one([1, 2, 3])
        assert compiled_agrees_with_cnf(cnf)

    def test_unsatisfiable_formula(self):
        cnf = CNF(2)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        compiler = KnowledgeCompiler()
        root, _, _ = compiler.compile(cnf)
        assert not evaluate_boolean(root, {1: True, 2: True})
        assert not evaluate_boolean(root, {1: False, 2: False})

    @pytest.mark.parametrize("order_method", ["min_fill", "min_degree", "lexicographic", "hypergraph"])
    def test_order_methods_all_correct(self, order_method):
        cnf = random_cnf(num_vars=6, num_clauses=9, seed=42)
        assert compiled_agrees_with_cnf(cnf, order_method)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_formulas_property(self, seed):
        cnf = random_cnf(num_vars=5, num_clauses=7, seed=seed)
        assert compiled_agrees_with_cnf(cnf)

    def test_decision_variable_restriction_preserves_semantics(self):
        cnf = CNF(4)
        cnf.add_clause([1, 2])
        cnf.add_clause([-2, 3])
        cnf.add_clause([3, 4])
        compiler = KnowledgeCompiler()
        unrestricted_root, _, _ = compiler.compile(cnf)
        restricted_root, _, _ = compiler.compile(cnf, decision_variables=[1, 2, 3, 4])
        for bits in itertools.product([False, True], repeat=4):
            assignment = dict(zip([1, 2, 3, 4], bits))
            assert evaluate_boolean(unrestricted_root, assignment) == evaluate_boolean(
                restricted_root, assignment
            )


class TestCompilerStructure:
    def test_decomposability(self):
        cnf = random_cnf(num_vars=6, num_clauses=8, seed=3)
        root, _, _ = KnowledgeCompiler().compile(cnf)
        assert check_decomposability(root)

    def test_caching_reduces_work(self):
        # Two independent copies of the same sub-formula should hit the cache.
        cnf = CNF(6)
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, 2])
        cnf.add_clause([3, 4])
        cnf.add_clause([-3, 4])
        cnf.add_clause([5, 6])
        cnf.add_clause([-5, 6])
        _, _, stats = KnowledgeCompiler().compile(cnf)
        assert stats.component_splits >= 1

    def test_node_and_edge_counts(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        root, _, _ = KnowledgeCompiler().compile(cnf)
        nodes, edges = count_nodes_and_edges(root)
        assert nodes >= 3
        assert edges >= 2

    def test_stats_dict(self):
        cnf = random_cnf(num_vars=5, num_clauses=6, seed=9)
        _, _, stats = KnowledgeCompiler().compile(cnf)
        summary = stats.as_dict()
        assert set(summary) == {"decisions", "cache_hits", "component_splits"}
        assert summary["decisions"] >= 1
