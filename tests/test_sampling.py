"""Tests for Gibbs sampling, ideal sampling and divergence metrics."""

import numpy as np
import pytest

from repro.circuits import CNOT, Circuit, H, LineQubit, ParamResolver, Ry, depolarize
from repro.densitymatrix import DensityMatrixSimulator
from repro.sampling import (
    GibbsSampler,
    chi_squared_statistic,
    empirical_distribution,
    ideal_sample_from_distribution,
    ideal_sample_from_state_vector,
    kl_divergence,
    reverse_kl_divergence,
    total_variation_distance,
)
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator


class TestMetrics:
    def test_kl_divergence_zero_for_identical(self):
        p = np.array([0.25, 0.75])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_positive_and_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) > 0
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_kl_divergence_handles_empirical_zeros(self):
        exact = np.array([0.5, 0.25, 0.25, 0.0])
        empirical = np.array([1.0, 0.0, 0.0, 0.0])
        value = kl_divergence(exact, empirical)
        assert np.isfinite(value)
        assert value > 0

    def test_reverse_kl(self):
        exact = np.array([0.5, 0.5, 0.0, 0.0])
        empirical = np.array([0.25, 0.25, 0.25, 0.25])
        assert reverse_kl_divergence(exact, empirical) > 0

    def test_total_variation(self):
        assert total_variation_distance([1, 0], [0, 1]) == pytest.approx(1.0)
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0)

    def test_chi_squared(self):
        exact = np.array([0.5, 0.5])
        empirical = np.array([0.6, 0.4])
        assert chi_squared_statistic(exact, empirical) == pytest.approx(0.04, abs=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [1.0])

    def test_empirical_distribution(self):
        samples = [(0, 0), (1, 1), (1, 1), (0, 1)]
        distribution = empirical_distribution(samples, 2)
        assert distribution[0] == pytest.approx(0.25)
        assert distribution[3] == pytest.approx(0.5)
        assert distribution.sum() == pytest.approx(1.0)

    def test_empirical_distribution_empty_samples(self):
        distribution = empirical_distribution([], 3)
        assert distribution.shape == (8,)
        assert distribution.sum() == 0.0

    def test_empirical_distribution_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            empirical_distribution([(0, 1, 0)], 2)

    def test_empirical_distribution_matches_sample_result(self):
        """One shared histogram: SampleResult delegates to the metrics implementation."""
        from repro.simulator.results import SampleResult
        from repro.circuits import LineQubit

        rng = np.random.default_rng(3)
        samples = [tuple(row) for row in rng.integers(0, 2, size=(200, 3))]
        result = SampleResult(LineQubit.range(3), samples)
        assert np.array_equal(result.empirical_distribution(), empirical_distribution(samples, 3))

    def test_kl_divergence_floors_zero_empirical_mass(self):
        """Zero empirical mass where the exact mass is positive: large but finite."""
        exact = np.array([0.5, 0.5, 0.0, 0.0])
        empirical = np.array([1.0, 0.0, 0.0, 0.0])
        value = kl_divergence(exact, empirical)
        assert np.isfinite(value)
        # The empirical zero is floored at one part in len(q) * 1e6 and the
        # distribution renormalized, so KL = 0.5*log(0.5/1) + 0.5*log(0.5/floor).
        floor = 1.0 / (4 * 1e6)
        expected = 0.5 * np.log(0.5) + 0.5 * np.log(0.5 / floor)
        assert value == pytest.approx(expected, rel=1e-3)

    def test_reverse_kl_floors_and_renormalizes(self):
        """Samples landing where the exact mass is zero must yield a finite penalty."""
        exact = np.array([1.0, 0.0])
        empirical = np.array([0.5, 0.5])
        value = reverse_kl_divergence(exact, empirical)
        assert np.isfinite(value)
        assert value > 1.0  # half the mass sits on a floored bin
        # Identical distributions stay at zero divergence despite the flooring,
        # because the floored exact distribution is renormalized.
        assert reverse_kl_divergence(exact, np.array([1.0, 0.0])) == pytest.approx(0.0, abs=1e-6)


class TestIdealSampling:
    def test_sample_counts(self, bell_circuit):
        state = StateVectorSimulator().simulate(bell_circuit).state_vector
        qubits = bell_circuit.all_qubits()
        samples = ideal_sample_from_state_vector(state, 500, qubits, np.random.default_rng(1))
        assert len(samples) == 500
        assert set(samples.bitstring_counts()) <= {"00", "11"}

    def test_distribution_validation(self):
        qubits = LineQubit.range(1)
        with pytest.raises(ValueError):
            ideal_sample_from_distribution(np.array([0.0, 0.0]), 10, qubits)
        with pytest.raises(ValueError):
            ideal_sample_from_distribution(np.array([1.0]), 10, LineQubit.range(2))

    def test_ideal_sampling_converges(self):
        rng = np.random.default_rng(7)
        exact = np.array([0.7, 0.1, 0.1, 0.1])
        samples = ideal_sample_from_distribution(exact, 5000, LineQubit.range(2), rng)
        empirical = samples.empirical_distribution()
        assert total_variation_distance(exact, empirical) < 0.03


class TestGibbsSampler:
    @pytest.fixture
    def compiled_biased_circuit(self):
        q = LineQubit.range(2)
        circuit = Circuit([Ry(2 * np.arcsin(np.sqrt(0.3)))(q[0]), CNOT(q[0], q[1])])
        simulator = KnowledgeCompilationSimulator(seed=3)
        return simulator.compile_circuit(circuit)

    def test_initial_state_has_positive_probability(self, compiled_biased_circuit):
        sampler = GibbsSampler(compiled_biased_circuit, rng=np.random.default_rng(2))
        state = sampler.initial_state()
        assert abs(sampler._amplitude(state)) > 0

    def test_step_preserves_keys(self, compiled_biased_circuit):
        sampler = GibbsSampler(compiled_biased_circuit, rng=np.random.default_rng(2))
        state = sampler.initial_state()
        new_state = sampler.step(state, sampler.bits[0])
        assert set(new_state) == set(state)

    def test_sweep_visits_all_bits(self, compiled_biased_circuit):
        sampler = GibbsSampler(compiled_biased_circuit, rng=np.random.default_rng(2))
        state = sampler.sweep(sampler.initial_state())
        assert set(state) == {v.node_name for v in compiled_biased_circuit.retained_variables}

    def test_sampler_matches_exact_distribution(self, compiled_biased_circuit):
        sampler = GibbsSampler(compiled_biased_circuit, rng=np.random.default_rng(5))
        samples = sampler.sample(3000, burn_in_sweeps=5, steps_per_sample=3)
        empirical = samples.empirical_distribution()
        exact = compiled_biased_circuit.probabilities()
        assert total_variation_distance(exact, empirical) < 0.08

    def test_noisy_sampler_marginalizes_noise(self):
        q = LineQubit.range(2)
        circuit = Circuit([Ry(1.1)(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.08))
        kc = KnowledgeCompilationSimulator(seed=11)
        compiled = kc.compile_circuit(circuit)
        sampler = GibbsSampler(compiled, rng=np.random.default_rng(11), restart_probability=0.2)
        samples = sampler.sample(3000, burn_in_sweeps=5, steps_per_sample=8)
        exact = DensityMatrixSimulator().simulate(circuit).probabilities()
        # Gibbs mixing across noise branches is slow (the paper notes the same
        # warm-up/mixing caveat), so the tolerance is looser than the ideal case.
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.12

    def test_seeded_sampling_is_reproducible(self, compiled_biased_circuit):
        first = GibbsSampler(compiled_biased_circuit, rng=np.random.default_rng(9)).sample(50)
        second = GibbsSampler(compiled_biased_circuit, rng=np.random.default_rng(9)).sample(50)
        assert first.samples == second.samples

    def test_samples_only_contain_qubit_bits(self, compiled_biased_circuit):
        sampler = GibbsSampler(compiled_biased_circuit, rng=np.random.default_rng(4))
        samples = sampler.sample(20)
        for bits in samples:
            assert len(bits) == 2
            assert all(b in (0, 1) for b in bits)
