"""The paper's validation claim: the knowledge-compilation backend reproduces
the algorithm benchmark suite (Section 3.3.1 / Appendix A.6.1).

Every instance is simulated with both the knowledge-compilation simulator and
the state-vector reference; the resulting output distributions must agree to
numerical precision (the compilation pipeline is exact).
"""

import numpy as np
import pytest

from repro.algorithms import (
    bell_state_circuit,
    bernstein_vazirani_circuit,
    chsh_circuit,
    deutsch_jozsa_circuit,
    ghz_circuit,
    grover_circuit,
    hidden_shift_circuit,
    inverse_qft_circuit,
    qft_circuit,
    random_circuit,
    simon_circuit,
    teleportation_circuit,
)
from repro.circuits import phase_damp
from repro.densitymatrix import DensityMatrixSimulator
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator


KC = KnowledgeCompilationSimulator(seed=1)
REFERENCE = StateVectorSimulator(seed=1)


SUITE = [
    pytest.param(bell_state_circuit(), id="bell_state"),
    pytest.param(ghz_circuit(3), id="ghz_3"),
    pytest.param(ghz_circuit(4), id="ghz_4"),
    pytest.param(teleportation_circuit(0.9), id="teleportation"),
    pytest.param(chsh_circuit(0, 0), id="chsh_00"),
    pytest.param(chsh_circuit(1, 1), id="chsh_11"),
    pytest.param(deutsch_jozsa_circuit(2, "balanced"), id="deutsch_jozsa_balanced"),
    pytest.param(deutsch_jozsa_circuit(2, "constant"), id="deutsch_jozsa_constant"),
    pytest.param(bernstein_vazirani_circuit([1, 0, 1]), id="bernstein_vazirani_101"),
    pytest.param(hidden_shift_circuit([1, 0, 0, 1]), id="hidden_shift_1001"),
    pytest.param(simon_circuit([1, 1]), id="simon_11"),
    pytest.param(qft_circuit(3, input_value=5), id="qft_3"),
    pytest.param(inverse_qft_circuit(3, 6), id="iqft_roundtrip"),
    pytest.param(grover_circuit([1, 0]), id="grover_10"),
    pytest.param(grover_circuit([1, 1, 0]), id="grover_110"),
    pytest.param(random_circuit(4, 2, seed=13), id="rcs_4x2"),
]


class TestKnowledgeCompilationMatchesStateVector:
    @pytest.mark.parametrize("instance", SUITE)
    def test_output_distribution_matches(self, instance):
        kc_state = KC.simulate(instance.circuit).state_vector
        reference_state = REFERENCE.simulate(instance.circuit).state_vector
        assert np.allclose(kc_state, reference_state, atol=1e-8)

    @pytest.mark.parametrize(
        "instance",
        [
            pytest.param(bell_state_circuit(), id="bell_state"),
            pytest.param(deutsch_jozsa_circuit(2, "balanced"), id="deutsch_jozsa"),
            pytest.param(grover_circuit([1, 1]), id="grover_11"),
        ],
    )
    def test_expected_distributions_reproduced(self, instance):
        if instance.expected_distribution is None:
            pytest.skip("no analytic distribution recorded")
        probabilities = np.abs(KC.simulate(instance.circuit).state_vector) ** 2
        assert np.allclose(probabilities, instance.expected_distribution, atol=1e-8)


class TestNoisySuite:
    def test_noisy_bell_density_matrix(self):
        instance = bell_state_circuit(noise_channel=phase_damp(0.36))
        kc_rho = KC.simulate_density_matrix(instance.circuit).density_matrix
        reference = DensityMatrixSimulator().simulate(instance.circuit).density_matrix
        assert np.allclose(kc_rho, reference, atol=1e-9)

    def test_noisy_ghz_density_matrix(self):
        from repro.circuits import depolarize

        circuit = ghz_circuit(3).circuit.copy()
        circuit.append(depolarize(0.02).on(circuit.all_qubits()[0]))
        kc_rho = KC.simulate_density_matrix(circuit).density_matrix
        reference = DensityMatrixSimulator().simulate(circuit).density_matrix
        assert np.allclose(kc_rho, reference, atol=1e-9)


class TestSamplingValidation:
    def test_grover_sampling_finds_marked_state(self):
        instance = grover_circuit([1, 0, 1])
        samples = KC.sample(instance.circuit, 300, seed=5)
        most_common_bits, _ = samples.most_common(1)[0]
        assert most_common_bits == (1, 0, 1)

    def test_bernstein_vazirani_sampling_recovers_secret(self):
        secret = [1, 1, 0]
        instance = bernstein_vazirani_circuit(secret)
        samples = KC.sample(instance.circuit, 200, seed=6)
        # The input register (first three bits) must always read the secret.
        for bits in samples:
            assert list(bits[:3]) == secret
