"""Tests for the dense linear-algebra helpers (including property-based tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import CNOT, H, X, Z
from repro.linalg import (
    apply_kraus_to_density,
    apply_unitary_to_density,
    apply_unitary_to_state,
    basis_state,
    bits_to_index,
    density_from_state,
    expand_operator,
    index_to_bits,
    kron_all,
    measurement_probabilities,
    partial_trace,
    state_fidelity,
    trace_distance,
)


def random_state(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2 ** num_qubits) + 1j * rng.normal(size=2 ** num_qubits)
    return state / np.linalg.norm(state)


def random_unitary(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dim = 2 ** num_qubits
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, _ = np.linalg.qr(matrix)
    return q


class TestIndexHelpers:
    def test_round_trip(self):
        for index in range(16):
            assert bits_to_index(index_to_bits(index, 4)) == index

    def test_qubit_zero_is_most_significant(self):
        assert index_to_bits(8, 4) == (1, 0, 0, 0)
        assert bits_to_index([1, 0]) == 2

    @given(st.integers(min_value=1, max_value=8), st.data())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, num_qubits, data):
        index = data.draw(st.integers(min_value=0, max_value=2 ** num_qubits - 1))
        assert bits_to_index(index_to_bits(index, num_qubits)) == index


class TestBasisAndKron:
    def test_basis_state(self):
        state = basis_state(2, 2)
        assert state[2] == 1.0 and np.count_nonzero(state) == 1

    def test_basis_state_out_of_range(self):
        with pytest.raises(ValueError):
            basis_state(4, 2)

    def test_kron_all(self):
        result = kron_all([np.eye(2), X.unitary()])
        assert result.shape == (4, 4)
        assert np.allclose(result, np.kron(np.eye(2), X.unitary()))


class TestExpandOperator:
    def test_single_qubit_on_first_of_two(self):
        expanded = expand_operator(X.unitary(), [0], 2)
        assert np.allclose(expanded, np.kron(X.unitary(), np.eye(2)))

    def test_single_qubit_on_second_of_two(self):
        expanded = expand_operator(X.unitary(), [1], 2)
        assert np.allclose(expanded, np.kron(np.eye(2), X.unitary()))

    def test_two_qubit_reversed_targets(self):
        # CNOT with control q1 and target q0.
        expanded = expand_operator(CNOT.unitary(), [1, 0], 2)
        state = basis_state(1, 2)  # |01>: control (q1) is 1
        result = expanded @ state
        assert np.allclose(result, basis_state(3, 2))

    def test_mismatched_shape_rejected(self):
        with pytest.raises(ValueError):
            expand_operator(X.unitary(), [0, 1], 2)


class TestStateApplication:
    @pytest.mark.parametrize("targets", [[0], [1], [2]])
    def test_single_qubit_matches_expand(self, targets):
        state = random_state(3, seed=1)
        direct = apply_unitary_to_state(state, H.unitary(), targets, 3)
        expected = expand_operator(H.unitary(), targets, 3) @ state
        assert np.allclose(direct, expected)

    @pytest.mark.parametrize("targets", [[0, 1], [1, 2], [2, 0]])
    def test_two_qubit_matches_expand(self, targets):
        state = random_state(3, seed=2)
        unitary = random_unitary(2, seed=3)
        direct = apply_unitary_to_state(state, unitary, targets, 3)
        expected = expand_operator(unitary, targets, 3) @ state
        assert np.allclose(direct, expected)

    def test_norm_preserved(self):
        state = random_state(4, seed=5)
        result = apply_unitary_to_state(state, random_unitary(2, seed=6), [1, 3], 4)
        assert np.linalg.norm(result) == pytest.approx(1.0)


class TestDensityApplication:
    def test_unitary_on_density_matches_state(self):
        state = random_state(3, seed=7)
        rho = density_from_state(state)
        unitary = random_unitary(2, seed=8)
        rho_after = apply_unitary_to_density(rho, unitary, [0, 2], 3)
        state_after = apply_unitary_to_state(state, unitary, [0, 2], 3)
        assert np.allclose(rho_after, density_from_state(state_after))

    def test_kraus_preserves_trace(self):
        rho = density_from_state(random_state(2, seed=9))
        gamma = 0.3
        kraus = [
            np.array([[1, 0], [0, np.sqrt(1 - gamma)]]),
            np.array([[0, np.sqrt(gamma)], [0, 0]]),
        ]
        rho_after = apply_kraus_to_density(rho, kraus, [1], 2)
        assert np.trace(rho_after) == pytest.approx(1.0)

    def test_partial_trace_of_product_state(self):
        state_a = random_state(1, seed=10)
        state_b = random_state(1, seed=11)
        rho = density_from_state(np.kron(state_a, state_b))
        reduced = partial_trace(rho, keep=[0], num_qubits=2)
        assert np.allclose(reduced, density_from_state(state_a), atol=1e-9)

    def test_partial_trace_of_bell_state_is_maximally_mixed(self):
        bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
        reduced = partial_trace(density_from_state(bell), keep=[0], num_qubits=2)
        assert np.allclose(reduced, np.eye(2) / 2)


class TestMetrics:
    def test_measurement_probabilities(self):
        state = np.array([1, 1j]) / np.sqrt(2)
        assert np.allclose(measurement_probabilities(state), [0.5, 0.5])

    def test_state_fidelity(self):
        a = basis_state(0, 1)
        b = np.array([1, 1]) / np.sqrt(2)
        assert state_fidelity(a, a) == pytest.approx(1.0)
        assert state_fidelity(a, b) == pytest.approx(0.5)

    def test_trace_distance(self):
        rho_a = density_from_state(basis_state(0, 1))
        rho_b = density_from_state(basis_state(1, 1))
        assert trace_distance(rho_a, rho_b) == pytest.approx(1.0)
        assert trace_distance(rho_a, rho_a) == pytest.approx(0.0)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_probabilities_sum_to_one(self, seed):
        state = random_state(3, seed=seed)
        assert measurement_probabilities(state).sum() == pytest.approx(1.0)
