"""Tests for NNF node structures and the forget/condition/smooth transforms."""

import itertools

import pytest

from repro.knowledge import (
    NNFManager,
    check_decomposability,
    check_smoothness,
    condition,
    evaluate_boolean,
    forget,
    smooth,
    topological_nodes,
    variables_of,
)


@pytest.fixture
def manager():
    return NNFManager()


def all_assignments(variables):
    for bits in itertools.product([False, True], repeat=len(variables)):
        yield dict(zip(variables, bits))


class TestManager:
    def test_literals_are_shared(self, manager):
        assert manager.literal(3) is manager.literal(3)
        assert manager.literal(3) is not manager.literal(-3)

    def test_zero_literal_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.literal(0)

    def test_conjoin_simplifications(self, manager):
        a = manager.literal(1)
        assert manager.conjoin([a, manager.true()]) is a
        assert isinstance(manager.conjoin([a, manager.false()]), type(manager.false()))
        assert isinstance(manager.conjoin([]), type(manager.true()))

    def test_disjoin_simplifications(self, manager):
        a = manager.literal(1)
        assert manager.disjoin([a, manager.false()]) is a
        assert isinstance(manager.disjoin([a, manager.true()]), type(manager.true()))
        assert isinstance(manager.disjoin([]), type(manager.false()))

    def test_structural_sharing_of_and_nodes(self, manager):
        a, b = manager.literal(1), manager.literal(2)
        node_one = manager.conjoin([a, b])
        node_two = manager.conjoin([b, a])
        assert node_one is node_two

    def test_nested_and_flattened(self, manager):
        a, b, c = (manager.literal(i) for i in (1, 2, 3))
        nested = manager.conjoin([a, manager.conjoin([b, c])])
        assert len(nested.children()) == 3


class TestTraversal:
    def test_topological_children_before_parents(self, manager):
        a, b = manager.literal(1), manager.literal(2)
        root = manager.disjoin([manager.conjoin([a, b]), manager.literal(-1)])
        order = topological_nodes(root)
        positions = {node.node_id: i for i, node in enumerate(order)}
        for node in order:
            for child in node.children():
                assert positions[child.node_id] < positions[node.node_id]

    def test_variables_of(self, manager):
        root = manager.conjoin([manager.literal(1), manager.literal(-3)])
        assert variables_of(root) == {1, 3}


class TestCondition:
    def test_condition_fixes_literal(self, manager):
        a, b = manager.literal(1), manager.literal(2)
        root = manager.conjoin([a, b])
        conditioned = condition(manager, root, [1])
        for assignment in all_assignments([1, 2]):
            expected = assignment[2]  # var 1 already satisfied
            assert evaluate_boolean(conditioned, assignment) == expected

    def test_condition_can_kill_branch(self, manager):
        root = manager.disjoin([manager.literal(1), manager.literal(2)])
        conditioned = condition(manager, root, [-1])
        assert evaluate_boolean(conditioned, {1: False, 2: True})
        assert not evaluate_boolean(conditioned, {1: False, 2: False})


class TestForget:
    def test_forget_is_existential_quantification(self, manager):
        # f = (x AND y) OR (NOT x AND z); exists x. f = y OR z.
        x, y, z = manager.literal(1), manager.literal(2), manager.literal(3)
        not_x = manager.literal(-1)
        root = manager.disjoin([manager.conjoin([x, y]), manager.conjoin([not_x, z])])
        forgotten = forget(manager, root, [1])
        for assignment in all_assignments([1, 2, 3]):
            expected = assignment[2] or assignment[3]
            assert evaluate_boolean(forgotten, assignment) == expected

    def test_forget_unrelated_variable_is_noop(self, manager):
        root = manager.conjoin([manager.literal(1), manager.literal(2)])
        assert forget(manager, root, [9]) is root


class TestSmooth:
    def test_smooth_adds_missing_variables(self, manager):
        # OR of a literal over var 1 and a literal over var 2 is not smooth.
        root = manager.disjoin([manager.literal(1), manager.literal(2)])
        assert not check_smoothness(root)
        smoothed = smooth(manager, root, [1, 2])
        assert check_smoothness(smoothed)
        # Smoothing must preserve the Boolean function.
        for assignment in all_assignments([1, 2]):
            assert evaluate_boolean(root, assignment) == evaluate_boolean(smoothed, assignment)

    def test_smooth_covers_root_level_variables(self, manager):
        root = manager.literal(1)
        smoothed = smooth(manager, root, [1, 2, 3])
        assert variables_of(smoothed) == {1, 2, 3}

    def test_smooth_preserves_decomposability(self, manager):
        root = manager.disjoin(
            [manager.conjoin([manager.literal(1), manager.literal(2)]), manager.literal(3)]
        )
        smoothed = smooth(manager, root, [1, 2, 3])
        assert check_decomposability(smoothed)
        assert check_smoothness(smoothed)
