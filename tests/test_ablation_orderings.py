"""Tests for the decision-ordering ablation experiment."""

import pytest

from repro.experiments import ablation_orderings


class TestAblationOrderings:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_orderings.run(num_qubits=5, order_methods=["lexicographic", "hypergraph"])

    def test_row_schema(self, result):
        assert len(result.rows) == 4  # 2 orderings x (elided, unelided)
        for row in result.rows:
            assert row["ac_nodes"] > 0
            assert row["compile_seconds"] >= 0
            assert row["nodes_vs_best"] >= 1.0

    def test_hypergraph_not_worse_than_lexicographic(self, result):
        by_key = {(r["order_method"], r["elide_internal_states"]): r["ac_nodes"] for r in result.rows}
        assert by_key[("hypergraph", True)] <= by_key[("lexicographic", True)]

    def test_elision_never_grows_the_circuit(self, result):
        by_key = {(r["order_method"], r["elide_internal_states"]): r["ac_nodes"] for r in result.rows}
        for method in ("lexicographic", "hypergraph"):
            assert by_key[(method, True)] <= by_key[(method, False)]

    def test_elision_only_mode(self):
        result = ablation_orderings.run(
            num_qubits=4, order_methods=["hypergraph"], include_unelided=False
        )
        assert len(result.rows) == 1
        assert result.rows[0]["elide_internal_states"] is True
