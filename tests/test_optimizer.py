"""Tests for the classical optimizers used in the variational loop."""

import numpy as np
import pytest

from repro.variational import NelderMeadOptimizer, OptimizationResult, RandomSearchOptimizer


def quadratic(x):
    return float(np.sum((np.asarray(x) - np.array([1.0, -2.0])[: len(x)]) ** 2))


def rosenbrock(x):
    x = np.asarray(x)
    return float((1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2)


class TestNelderMead:
    def test_minimizes_quadratic(self):
        optimizer = NelderMeadOptimizer(max_iterations=300, tolerance=1e-10, initial_step=0.5)
        result = optimizer.minimize(quadratic, [0.0, 0.0])
        assert result.best_value < 1e-4
        assert np.allclose(result.best_parameters, [1.0, -2.0], atol=0.05)

    def test_minimizes_rosenbrock_reasonably(self):
        optimizer = NelderMeadOptimizer(max_iterations=600, tolerance=1e-12, initial_step=0.4)
        result = optimizer.minimize(rosenbrock, [-0.5, 0.5])
        assert result.best_value < 0.05

    def test_one_dimensional(self):
        optimizer = NelderMeadOptimizer(max_iterations=200)
        result = optimizer.minimize(lambda x: float((x[0] - 3.0) ** 2), [0.0])
        assert result.best_parameters[0] == pytest.approx(3.0, abs=0.05)

    def test_history_and_evaluation_count(self):
        optimizer = NelderMeadOptimizer(max_iterations=50)
        result = optimizer.minimize(quadratic, [0.0, 0.0])
        assert result.num_evaluations == len(result.history)
        assert result.num_evaluations >= 3

    def test_convergence_flag_on_flat_function(self):
        optimizer = NelderMeadOptimizer(max_iterations=50, tolerance=1e-3)
        result = optimizer.minimize(lambda x: 1.0, [0.0, 0.0])
        assert result.converged

    def test_result_repr(self):
        result = OptimizationResult(np.array([1.0]), 0.5, 10, [], True)
        assert "0.5" in repr(result)


class TestRandomSearch:
    def test_improves_over_initial(self):
        optimizer = RandomSearchOptimizer(num_samples=200, bounds=(-4.0, 4.0), seed=3)
        result = optimizer.minimize(quadratic, [4.0, 4.0])
        assert result.best_value < quadratic([4.0, 4.0])

    def test_respects_bounds(self):
        optimizer = RandomSearchOptimizer(num_samples=50, bounds=(0.0, 1.0), seed=5)
        result = optimizer.minimize(quadratic, [0.5, 0.5])
        for point, _ in result.history[1:]:
            assert np.all(point >= 0.0) and np.all(point <= 1.0)
