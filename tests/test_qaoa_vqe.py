"""Tests for the QAOA and VQE ansatz builders."""

import numpy as np
import pytest

from repro.circuits import ParamResolver
from repro.simulator import SampleResult
from repro.statevector import StateVectorSimulator
from repro.variational import (
    IsingModel2D,
    QAOACircuit,
    VQECircuit,
    qaoa_maxcut_circuit,
    ring_maxcut,
    square_grid_ising,
)


class TestQAOACircuit:
    def test_structure(self):
        problem = ring_maxcut(4)
        ansatz = QAOACircuit(problem, iterations=1)
        # 4 H + 4 ZZ (ring edges) + 4 Rx.
        assert ansatz.circuit.gate_count() == 12
        assert ansatz.num_parameters == 2
        assert len(ansatz.circuit.parameters) == 2

    def test_two_iterations_doubles_layers(self):
        problem = ring_maxcut(4)
        one = QAOACircuit(problem, iterations=1).circuit.gate_count()
        two = QAOACircuit(problem, iterations=2).circuit.gate_count()
        assert two == one + 8  # one extra ZZ layer + one extra Rx layer

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            QAOACircuit(ring_maxcut(4), iterations=0)

    def test_resolver_layout(self):
        ansatz = QAOACircuit(ring_maxcut(4), iterations=2)
        resolver = ansatz.resolver([0.1, 0.2, 0.3, 0.4])
        assert resolver.value_of(ansatz.gammas[0]) == pytest.approx(0.1)
        assert resolver.value_of(ansatz.gammas[1]) == pytest.approx(0.2)
        assert resolver.value_of(ansatz.betas[0]) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            ansatz.resolver([0.1])

    def test_known_optimal_angles_for_ring(self):
        """For even rings, QAOA p=1 reaches an expected cut of 3/4 per edge.

        With this library's convention (U_C edge term = exp(-i gamma Z Z),
        mixer = exp(-i beta X)), the p=1 optimum for a ring sits at
        gamma = 7 pi / 8, beta = pi / 8.
        """
        problem = ring_maxcut(4)
        circuit = qaoa_maxcut_circuit(problem, [7 * np.pi / 8], [np.pi / 8])
        probabilities = np.abs(StateVectorSimulator().simulate(circuit).state_vector) ** 2
        expected_cut = problem.expected_cut(probabilities)
        assert expected_cut == pytest.approx(3.0, abs=1e-6)

    def test_objective_from_samples(self):
        problem = ring_maxcut(4)
        ansatz = QAOACircuit(problem, iterations=1)
        samples = SampleResult(ansatz.qubits, [(0, 1, 0, 1), (0, 0, 0, 0)])
        assert ansatz.objective_from_samples(samples) == pytest.approx(-2.0)

    def test_objective_from_distribution(self):
        problem = ring_maxcut(4)
        ansatz = QAOACircuit(problem, iterations=1)
        distribution = np.zeros(16)
        distribution[0b0101] = 1.0
        assert ansatz.objective_from_distribution(distribution) == pytest.approx(-4.0)


class TestVQECircuit:
    def test_structure(self):
        model = square_grid_ising(4)
        ansatz = VQECircuit(model, iterations=1)
        # Initial Ry layer (4) + ZZ per edge (4 for 2x2 grid) + final Ry layer (4).
        assert ansatz.circuit.gate_count() == 12
        assert ansatz.num_parameters == 2 * 4 + 1

    def test_resolver_round_trip(self):
        model = square_grid_ising(4)
        ansatz = VQECircuit(model, iterations=1)
        values = np.linspace(0.1, 0.9, ansatz.num_parameters)
        resolver = ansatz.resolver(values)
        assert resolver.value_of(ansatz.thetas[0][0]) == pytest.approx(values[0])
        assert resolver.value_of(ansatz.coupling_angles[0]) == pytest.approx(values[-1])

    def test_ansatz_can_express_ground_state(self):
        """With rotation angles 0 or pi the ansatz prepares classical spin states."""
        model = IsingModel2D(1, 2, coupling=1.0, field=0.0)
        ansatz = VQECircuit(model, iterations=1)
        # Ry(pi) on site 0, Ry(0) on site 1, no entangling angle, no final rotation.
        parameters = [np.pi, 0.0, 0.0, 0.0, 0.0]
        resolver = ansatz.resolver(parameters)
        state = StateVectorSimulator().simulate(ansatz.circuit, resolver).state_vector
        probabilities = np.abs(state) ** 2
        assert probabilities[2] == pytest.approx(1.0, abs=1e-9)  # |10>
        assert model.expected_energy(probabilities) == pytest.approx(-1.0)

    def test_objective_from_samples(self):
        model = IsingModel2D(1, 2, coupling=1.0, field=0.0)
        ansatz = VQECircuit(model, iterations=1)
        samples = SampleResult(ansatz.qubits, [(0, 1), (1, 0)])
        assert ansatz.objective_from_samples(samples) == pytest.approx(-1.0)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            VQECircuit(square_grid_ising(4), iterations=0)
