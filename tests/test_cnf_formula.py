"""Tests for the CNF data structure and DIMACS I/O."""

import pytest

from repro.cnf import CNF, unit_propagate_cnf


class TestConstruction:
    def test_new_var_and_names(self):
        cnf = CNF()
        v1 = cnf.new_var("alpha")
        v2 = cnf.new_var()
        assert (v1, v2) == (1, 2)
        assert cnf.name_of(v1) == "alpha"
        assert cnf.name_of(v2) == "v2"

    def test_add_clause_validates_range(self):
        cnf = CNF(2)
        with pytest.raises(ValueError):
            cnf.add_clause([3])
        with pytest.raises(ValueError):
            cnf.add_clause([0])
        with pytest.raises(ValueError):
            cnf.add_clause([])

    def test_tautologies_skipped(self):
        cnf = CNF(1)
        cnf.add_clause([1, -1])
        assert cnf.num_clauses == 0

    def test_duplicate_literals_deduplicated(self):
        cnf = CNF(2)
        cnf.add_clause([1, 1, 2])
        assert cnf.clauses[0] == (1, 2)

    def test_exactly_one(self):
        cnf = CNF()
        variables = [cnf.new_var() for _ in range(3)]
        cnf.add_exactly_one(variables)
        # 1 at-least-one clause + 3 pairwise at-most-one clauses.
        assert cnf.num_clauses == 4
        assert cnf.model_count() == 3


class TestSemantics:
    def test_model_count_simple(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        assert cnf.model_count() == 3

    def test_is_satisfied_by(self):
        cnf = CNF(2)
        cnf.add_clause([1])
        cnf.add_clause([-2])
        assert cnf.is_satisfied_by({1: True, 2: False})
        assert not cnf.is_satisfied_by({1: True, 2: True})

    def test_primal_graph(self):
        cnf = CNF(3)
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3])
        graph = cnf.primal_graph()
        assert 2 in graph[1]
        assert 3 in graph[2]
        assert 3 not in graph[1]

    def test_stats(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        stats = cnf.stats()
        assert stats == {"variables": 2, "clauses": 1, "literals": 2}


class TestDimacs:
    def test_round_trip(self):
        cnf = CNF()
        a = cnf.new_var("a")
        b = cnf.new_var("b")
        cnf.add_clause([a, -b])
        cnf.add_clause([b])
        text = cnf.to_dimacs()
        parsed = CNF.from_dimacs(text)
        assert parsed.num_vars == 2
        assert parsed.clauses == cnf.clauses
        assert parsed.var_names[1] == "a"

    def test_parse_header_and_comments(self):
        text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_vars == 3
        assert cnf.num_clauses == 2
        assert cnf.comments == ["a comment"]

    def test_file_round_trip(self, tmp_path):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        path = tmp_path / "formula.cnf"
        cnf.write_dimacs(str(path))
        loaded = CNF.read_dimacs(str(path))
        assert loaded.clauses == cnf.clauses


class TestUnitPropagation:
    def test_forced_literals(self):
        cnf = CNF(3)
        cnf.add_clause([1])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2, 3, -3])  # tautology, dropped at insert
        cnf.add_clause([2, 3])
        simplified, forced = unit_propagate_cnf(cnf)
        assert 1 in forced and 2 in forced
        assert simplified.num_clauses == 0

    def test_unsat_detected(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        with pytest.raises(ValueError):
            unit_propagate_cnf(cnf)

    def test_residual_clauses_untouched_by_propagation(self):
        cnf = CNF(3)
        cnf.add_clause([1])
        cnf.add_clause([2, 3])
        simplified, forced = unit_propagate_cnf(cnf)
        assert forced == {1}
        assert simplified.clauses == [(2, 3)]
        # Original model count: var 1 forced true, (2, 3) leaves 3 choices.
        assert cnf.model_count() == 3
