"""Cost-model routing: predictors, artifacts, capability-safe decisions.

The contracts under test:

* **Determinism** — fitting is pure linear algebra on the samples; a
  persisted artifact reloads to bit-identical predictions, including in a
  fresh interpreter (routing decisions must not drift across processes).
* **Safety** — ``mode="cost"`` never selects a backend the rules path
  would reject: capability and memory-budget filtering run before the
  ranking, and with no model fitted the cost path defers to the rules
  verbatim.
* **Capability-aware fallback** — an incapable fallback backend is
  replaced by the cheapest capable one; ``BackendCapabilityError`` fires
  only when no registered backend can serve the item.
* **Batch-aware memory** — the trajectory ensemble's ``(B, 2^n)`` state
  is priced with its batch axis, so budget filtering reacts to
  ``repetitions``.
* **Telemetry** — every executed item reports measured wall clock, and
  cost-routed items report the prediction next to it.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import CNOT, Circuit, H, LineQubit, Rx, depolarize
from repro.api import backend_capabilities
from repro.api.costmodel import (
    COST_MODEL_ENV,
    FEATURE_NAMES,
    CircuitFeatures,
    CostModel,
    CostSample,
    _reset_default_cache,
    calibration_suite,
    extract_features,
    fit_cost_model,
    holdout_suite,
)
from repro.api.device import Device, device
from repro.api.routing import capable_backends, select_backend
from repro.errors import BackendCapabilityError, CostModelError, InvalidRequestError


def _clifford(n=3):
    q = LineQubit.range(n)
    return Circuit([H(q[0])] + [CNOT(q[i], q[i + 1]) for i in range(n - 1)])


def _nonclifford(n=3, angle=0.3):
    q = LineQubit.range(n)
    ops = [H(q[0]), Rx(angle)(q[1])] + [CNOT(q[i], q[i + 1]) for i in range(n - 1)]
    return Circuit(ops)


def _features(n=4, depth=8, gates=12, noise=0, reps=64):
    return CircuitFeatures(
        num_qubits=n,
        depth=depth,
        gate_count=gates,
        clifford_fraction=0.5,
        noise_ops=noise,
        has_noise=noise > 0,
        pauli_noise=noise > 0,
        repetitions=reps,
    )


def _synthetic_model(costs, meta=None):
    """Fit a model where each backend's runtime is a flat ``costs[name]``."""
    rng = np.random.default_rng(5)
    samples = []
    for backend in sorted(costs):
        for _ in range(16):
            samples.append(
                CostSample(
                    backend,
                    _features(
                        n=int(rng.integers(2, 12)),
                        depth=int(rng.integers(2, 40)),
                        gates=int(rng.integers(4, 120)),
                        reps=int(rng.integers(1, 512)),
                    ),
                    costs[backend],
                )
            )
    return fit_cost_model(samples, meta=meta)


@pytest.fixture
def no_default_model(monkeypatch, tmp_path):
    """Point the default-artifact resolution at a missing file."""
    monkeypatch.setenv(COST_MODEL_ENV, str(tmp_path / "missing.json"))
    _reset_default_cache()
    yield
    _reset_default_cache()


class TestFeatureExtraction:
    def test_vector_matches_feature_basis(self):
        vector = _features().vector()
        assert len(vector) == len(FEATURE_NAMES)
        assert vector[0] == 1.0  # bias

    def test_clifford_circuit_features(self):
        features = extract_features(_clifford(4), repetitions=128)
        assert features.num_qubits == 4
        assert features.clifford_fraction == 1.0
        assert not features.has_noise
        assert features.repetitions == 128

    def test_noisy_circuit_features(self):
        noisy = _nonclifford(3).with_noise(lambda: depolarize(0.02))
        features = extract_features(noisy)
        assert features.has_noise
        assert features.pauli_noise
        assert features.noise_ops > 0
        assert 0.0 < features.clifford_fraction < 1.0

    def test_features_are_immutable(self):
        with pytest.raises(AttributeError):
            _features().num_qubits = 9


class TestFitAndPersistence:
    def test_fit_predicts_calibrated_scale(self):
        model = _synthetic_model({"state_vector": 1e-3, "tensor_network": 1e-1})
        features = _features()
        fast = model.predict_seconds("state_vector", features)
        slow = model.predict_seconds("tensor_network", features)
        assert 0 < fast < slow

    def test_rank_orders_by_prediction_and_breaks_ties_by_name(self):
        model = _synthetic_model(
            {"trajectory": 1e-4, "state_vector": 1e-2, "density_matrix": 1e-1}
        )
        ranked = model.rank(
            _features(), ["density_matrix", "state_vector", "trajectory"]
        )
        assert [name for name, _ in ranked] == [
            "trajectory",
            "state_vector",
            "density_matrix",
        ]
        # Unpriced candidates are skipped, not errors.
        assert model.rank(_features(), ["stabilizer"]) == []

    def test_serialization_round_trip_is_bit_identical(self):
        model = _synthetic_model({"state_vector": 2e-3, "trajectory": 7e-4})
        clone = CostModel.loads(model.dumps())
        for n in range(2, 14):
            features = _features(n=n, depth=3 * n, gates=5 * n, reps=2**n)
            for backend in model.backends():
                assert model.predict_seconds(backend, features) == clone.predict_seconds(
                    backend, features
                )
        assert clone.dumps() == model.dumps()

    def test_save_and_load(self, tmp_path):
        model = _synthetic_model({"state_vector": 1e-3}, meta={"calibration_seed": 0})
        path = tmp_path / "model.json"
        model.save(path)
        loaded = CostModel.load(path)
        assert loaded.backends() == ["state_vector"]
        assert loaded.meta["calibration_seed"] == 0

    def test_version_mismatch_raises(self):
        payload = _synthetic_model({"state_vector": 1e-3}).to_dict()
        payload["version"] = 999
        with pytest.raises(CostModelError):
            CostModel.from_dict(payload)

    def test_feature_basis_mismatch_raises(self):
        payload = _synthetic_model({"state_vector": 1e-3}).to_dict()
        payload["feature_names"] = ["bias", "something_else"]
        with pytest.raises(CostModelError):
            CostModel.from_dict(payload)

    def test_unknown_backend_raises(self):
        model = _synthetic_model({"state_vector": 1e-3})
        with pytest.raises(CostModelError):
            model.predict_seconds("stabilizer", _features())

    def test_fit_requires_samples(self):
        with pytest.raises(CostModelError):
            fit_cost_model([])


class TestCrossProcessDeterminism:
    def test_subprocess_predictions_bit_identical(self, tmp_path):
        model = _synthetic_model({"state_vector": 3e-3, "trajectory": 9e-4})
        path = tmp_path / "model.json"
        model.save(path)
        probe = (
            "from repro.api.costmodel import CostModel, CircuitFeatures\n"
            f"model = CostModel.load({str(path)!r})\n"
            "for n in range(2, 14):\n"
            "    f = CircuitFeatures(n, 3 * n, 5 * n, 0.5, 0, False, False, 2 ** n)\n"
            "    for b in model.backends():\n"
            "        print(model.predict_seconds(b, f).hex())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = os.pathsep.join(filter(None, [src, env.get("PYTHONPATH")]))
        output = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.split()
        expected = [
            model.predict_seconds(backend, _feat).hex()
            for n in range(2, 14)
            for _feat in [CircuitFeatures(n, 3 * n, 5 * n, 0.5, 0, False, False, 2**n)]
            for backend in model.backends()
        ]
        assert output == expected


class TestCalibrationSuites:
    def test_suites_are_seed_deterministic_without_execution(self):
        first = calibration_suite(seed=0)
        second = calibration_suite(seed=0)
        assert [case.label for case in first] == [case.label for case in second]
        assert all(
            a.circuit.gate_count() == b.circuit.gate_count()
            for a, b in zip(first, second)
        )

    def test_holdout_is_fifty_cases(self):
        holdout = holdout_suite(seed=101)
        assert len(holdout) == 50
        assert len({case.label for case in holdout}) == 50


class TestCostModeRouting:
    def test_cost_mode_without_model_matches_rules(self, no_default_model):
        circuits = [
            (_clifford(3), True),
            (_clifford(3), False),
            (_clifford(3).with_noise(lambda: depolarize(0.05)), True),
            (_clifford(3).with_noise(lambda: depolarize(0.05)), False),
            (_nonclifford(4), True),
            (_nonclifford(4).with_noise(lambda: depolarize(0.02)), True),
        ]
        for circuit, sampling in circuits:
            rules = select_backend(circuit, sampling=sampling)
            cost = select_backend(circuit, sampling=sampling, mode="cost")
            assert cost == rules

    def test_cost_mode_picks_predicted_fastest_capable(self):
        model = _synthetic_model(
            {
                "state_vector": 1e-2,
                "trajectory": 1e-4,
                "density_matrix": 1e-1,
                "stabilizer": 1e-3,
            }
        )
        decision = select_backend(_nonclifford(4), mode="cost", cost_model=model)
        # stabilizer is priced cheapest-but-one yet incapable (non-Clifford);
        # the capability filter runs before the ranking.
        assert decision.backend == "trajectory"
        assert decision.predicted_seconds is not None
        assert "cost model v1" in decision.reason

    def test_cost_mode_never_selects_incapable_backend(self):
        cheap_everywhere = _synthetic_model({"stabilizer": 1e-6, "state_vector": 1.0})
        noisy = _nonclifford(4).with_noise(lambda: depolarize(0.02))
        decision = select_backend(noisy, mode="cost", cost_model=cheap_everywhere)
        assert decision.backend != "stabilizer"

    def test_invalid_mode_and_model_types_raise(self):
        with pytest.raises(BackendCapabilityError):
            select_backend(_clifford(), mode="greedy")
        with pytest.raises(CostModelError):
            select_backend(_clifford(), mode="cost", cost_model={"not": "a model"})


class TestCapableFallback:
    def test_incapable_fallback_is_substituted(self):
        # 20 noisy non-Clifford qubits: the 13-qubit density matrix cannot
        # serve the item; the old router would have dispatched it anyway.
        noisy = _nonclifford(20).with_noise(lambda: depolarize(0.01))
        decision = select_backend(noisy, fallback="density_matrix")
        assert decision.backend == "state_vector"
        assert "cannot serve this item" in decision.reason

    def test_simulate_route_substitutes_unravelling_backend(self):
        # 20 noisy qubits overflow the 13-qubit density matrix; the
        # simulate route substitutes the state vector, which serves noisy
        # simulate by stochastic unravelling (Device enforces mixed-state
        # output only for probability/expectation observables).
        noisy = _nonclifford(20).with_noise(lambda: depolarize(0.01))
        decision = select_backend(noisy, fallback="density_matrix", sampling=False)
        assert decision.backend == "state_vector"

    def test_impossible_item_raises_typed_error(self):
        noisy = _nonclifford(40).with_noise(lambda: depolarize(0.01))
        with pytest.raises(BackendCapabilityError):
            select_backend(noisy)

    def test_unregistered_fallback_is_preserved(self):
        # Attached-instance keys (HybridSimulator) bypass capability checks:
        # the caller vouches for them.
        decision = select_backend(_nonclifford(4), fallback="state_vector#custom")
        assert decision.backend == "state_vector#custom"


class TestBatchAwareMemory:
    def test_trajectory_estimate_scales_with_batch(self):
        caps = backend_capabilities("trajectory")
        single = caps.estimated_memory_bytes(10)
        assert caps.estimated_memory_bytes(10, batch_size=64) == 64 * single
        # Chunked execution clamps the resident batch at max_batch_size.
        assert (
            caps.estimated_memory_bytes(10, batch_size=100_000)
            == caps.max_batch_size * single
        )

    def test_serial_backends_ignore_batch(self):
        caps = backend_capabilities("state_vector")
        assert caps.estimated_memory_bytes(10, batch_size=64) == (
            caps.estimated_memory_bytes(10)
        )

    def test_budget_filtering_reacts_to_repetitions(self):
        noisy = _nonclifford(10).with_noise(lambda: depolarize(0.01))
        budget = 64 * 16 * 2**10  # 64 trajectory rows at n=10
        roomy = capable_backends(noisy, repetitions=8, memory_budget=budget)
        tight = capable_backends(noisy, repetitions=512, memory_budget=budget)
        assert "trajectory" in roomy
        assert "trajectory" not in tight

    def test_downgrade_path_both_directions(self):
        noisy = _nonclifford(10).with_noise(lambda: depolarize(0.01))
        budget = 64 * 16 * 2**10
        kept = select_backend(
            noisy, fallback="trajectory", repetitions=8, memory_budget=budget
        )
        downgraded = select_backend(
            noisy, fallback="trajectory", repetitions=512, memory_budget=budget
        )
        assert kept.backend == "trajectory"
        assert downgraded.backend == "state_vector"
        assert "cannot serve this item" in downgraded.reason


class TestCostRoutedDevice:
    def test_invalid_routing_mode_raises(self):
        with pytest.raises(InvalidRequestError):
            Device(backend="auto", routing="fastest")

    def test_cost_routed_serial_matches_pooled(self):
        model = _synthetic_model(
            {"state_vector": 1e-3, "trajectory": 5e-4, "stabilizer": 1e-4}
        )
        batch = [_clifford(4), _nonclifford(4), _clifford(5), _nonclifford(5)] * 3
        serial = (
            device("auto", seed=11, routing="cost", cost_model=model)
            .run(batch, repetitions=32)
            .result()
        )
        pooled = (
            device("auto", seed=11, routing="cost", cost_model=model)
            .run(batch, repetitions=32, jobs=3)
            .result()
        )
        assert serial.backends() == pooled.backends()
        for left, right in zip(serial, pooled):
            assert np.array_equal(left["samples"].samples, right["samples"].samples)

    def test_cost_routing_parity_with_rules_when_no_model(self, no_default_model):
        batch = [_clifford(4), _nonclifford(4)]
        rules_rows = device("auto", seed=5).run(batch, repetitions=16).result()
        cost_rows = (
            device("auto", seed=5, routing="cost").run(batch, repetitions=16).result()
        )
        assert rules_rows.backends() == cost_rows.backends()
        for left, right in zip(rules_rows, cost_rows):
            assert np.array_equal(left["samples"].samples, right["samples"].samples)

    def test_timing_telemetry_round_trip(self, tmp_path):
        model = _synthetic_model({"state_vector": 1e-3, "stabilizer": 1e-4})
        path = tmp_path / "model.json"
        model.save(path)
        dev = device("auto", seed=3, routing="cost", cost_model=str(path))
        timings = dev.run([_clifford(3)], repetitions=16).result().timings()
        assert timings[0]["backend"] == "stabilizer"
        assert timings[0]["elapsed_seconds"] > 0
        expected = model.predict_seconds(
            "stabilizer", extract_features(_clifford(3), repetitions=16)
        )
        assert timings[0]["predicted_seconds"] == expected

    def test_rules_routing_reports_no_prediction(self):
        timings = (
            device("auto", seed=3).run([_clifford(3)], repetitions=16).result().timings()
        )
        assert timings[0]["predicted_seconds"] is None
        assert timings[0]["elapsed_seconds"] > 0

    def test_device_decide_carries_prediction(self):
        model = _synthetic_model({"state_vector": 1e-3, "stabilizer": 1e-4})
        dev = device("auto", routing="cost", cost_model=model)
        decision = dev.decide(_clifford(3), repetitions=16)
        assert decision.backend == "stabilizer"
        assert decision.predicted_seconds is not None


class TestDefaultArtifact:
    def test_committed_default_model_loads_and_prices_all_backends(self):
        from repro.api.costmodel import DEFAULT_ARTIFACT, default_cost_model

        assert os.path.exists(DEFAULT_ARTIFACT)
        _reset_default_cache()
        try:
            model = default_cost_model()
            assert model is not None
            assert set(model.backends()) >= {
                "density_matrix",
                "knowledge_compilation",
                "stabilizer",
                "state_vector",
                "tensor_network",
                "trajectory",
            }
            # Cached: repeated resolution returns the same object.
            assert default_cost_model() is model
        finally:
            _reset_default_cache()
