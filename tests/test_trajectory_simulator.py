"""Unit tests for the batched quantum-trajectory backend."""

import numpy as np
import pytest

from repro.circuits import CNOT, Circuit, H, LineQubit, Rz, X, Z, measure
from repro.circuits.noise import (
    KrausChannel,
    amplitude_damp,
    bit_flip,
    depolarize,
    phase_damp,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.statevector import StateVectorSimulator
from repro.trajectory import TrajectorySimulator
from repro.trajectory.simulator import (
    _KrausStep,
    _MixtureStep,
    _UnitaryStep,
    compile_trajectory_program,
)


class TestProgramCompilation:
    def test_adjacent_single_qubit_unitaries_fuse(self):
        q = LineQubit(0)
        circuit = Circuit([H(q), Z(q), Rz(0.3)(q)])
        program = compile_trajectory_program(circuit, None, {q: 0})
        assert len(program) == 1
        assert isinstance(program[0], _UnitaryStep)
        expected = Rz(0.3).unitary() @ Z.unitary() @ H.unitary()
        assert np.allclose(program[0].matrix, expected, atol=1e-12)

    def test_fusion_does_not_cross_entangling_gates(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1]), H(q[0])])
        program = compile_trajectory_program(circuit, None, {q[0]: 0, q[1]: 1})
        assert len(program) == 3

    def test_fusion_does_not_cross_noise(self):
        q = LineQubit(0)
        circuit = Circuit([H(q)])
        circuit.append(depolarize(0.1).on(q))
        circuit.append(X(q))
        program = compile_trajectory_program(circuit, None, {q: 0})
        kinds = [type(step) for step in program]
        assert kinds == [_UnitaryStep, _MixtureStep, _UnitaryStep]

    def test_identical_channels_share_one_compiled_step(self):
        q = LineQubit(0)
        circuit = Circuit([H(q)])
        circuit.append(depolarize(0.05).on(q))
        circuit.append(X(q))
        circuit.append(depolarize(0.05).on(q))
        program = compile_trajectory_program(circuit, None, {q: 0})
        mixtures = [step for step in program if isinstance(step, _MixtureStep)]
        assert len(mixtures) == 2
        assert mixtures[0] is mixtures[1]

    def test_mixture_channels_compile_to_mixture_steps(self):
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(bit_flip(0.25).on(q))
        circuit.append(amplitude_damp(0.25).on(q))
        program = compile_trajectory_program(circuit, None, {q: 0})
        assert isinstance(program[1], _MixtureStep)
        assert isinstance(program[2], _KrausStep)

    def test_measurements_are_dropped(self):
        q = LineQubit(0)
        circuit = Circuit([H(q), measure(q)])
        program = compile_trajectory_program(circuit, None, {q: 0})
        assert len(program) == 1


class TestSimulate:
    def test_ideal_circuit_is_exact(self, bell_circuit):
        result = TrajectorySimulator(seed=0).simulate(bell_circuit, num_trajectories=4)
        expected = DensityMatrixSimulator().simulate(bell_circuit).density_matrix
        assert np.allclose(result.density_matrix, expected, atol=1e-12)

    def test_simulate_trajectory_returns_pure_state(self, bell_circuit):
        result = TrajectorySimulator(seed=0).simulate_trajectory(bell_circuit)
        assert result.state_vector.shape == (4,)
        assert np.linalg.norm(result.state_vector) == pytest.approx(1.0)

    def test_trajectory_states_stay_normalized_under_noise(self):
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(amplitude_damp(0.5).on(q))
        result = TrajectorySimulator(seed=1).simulate_trajectory(circuit, seed=5)
        assert np.linalg.norm(result.state_vector) == pytest.approx(1.0)

    def test_bit_flip_branch_statistics(self):
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(bit_flip(0.2).on(q))
        probabilities = TrajectorySimulator(seed=2).estimate_probabilities(
            circuit, num_trajectories=8000
        )
        assert probabilities[0] == pytest.approx(0.2, abs=0.02)

    def test_custom_kraus_channel(self):
        gamma = 0.35
        channel = KrausChannel(
            [
                np.array([[1.0, 0.0], [0.0, np.sqrt(1 - gamma)]], dtype=complex),
                np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]], dtype=complex),
            ],
            name="custom_damping",
        )
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(channel.on(q))
        probabilities = TrajectorySimulator(seed=3).estimate_probabilities(
            circuit, num_trajectories=8000
        )
        assert probabilities[0] == pytest.approx(gamma, abs=0.02)


class TestSample:
    def test_sample_count_and_width(self, noisy_bell_circuit):
        result = TrajectorySimulator(seed=4).sample(noisy_bell_circuit, 257)
        assert len(result) == 257
        assert all(len(sample) == 2 for sample in result.samples)

    def test_seeded_sampling_is_reproducible(self, noisy_bell_circuit):
        simulator = TrajectorySimulator(seed=5)
        first = simulator.sample(noisy_bell_circuit, 100, seed=9).samples
        second = simulator.sample(noisy_bell_circuit, 100, seed=9).samples
        assert first == second

    def test_seedless_sampling_uses_shared_default_rng(self, noisy_bell_circuit):
        simulator = TrajectorySimulator(seed=6)
        first = simulator.sample(noisy_bell_circuit, 100).samples
        second = simulator.sample(noisy_bell_circuit, 100).samples
        assert first != second  # the default generator advances between calls

    def test_ideal_sampling_matches_state_vector_distribution(self, bell_circuit):
        trajectory = TrajectorySimulator(seed=7).sample(bell_circuit, 4000, seed=1)
        distribution = trajectory.empirical_distribution()
        assert distribution[1] == 0.0 and distribution[2] == 0.0
        assert distribution[0] == pytest.approx(0.5, abs=0.05)

    def test_num_trajectories_validation(self, noisy_bell_circuit):
        simulator = TrajectorySimulator(seed=8)
        with pytest.raises(ValueError):
            simulator.sample(noisy_bell_circuit, 10, num_trajectories=0)
        with pytest.raises(ValueError):
            simulator.sample(noisy_bell_circuit, 0)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            TrajectorySimulator(max_batch_size=0)

    def test_qubit_order_respected(self):
        q = LineQubit.range(2)
        circuit = Circuit([Z(q[0]), X(q[1])])
        circuit.append(depolarize(0.0).on(q[1]))
        default_order = TrajectorySimulator(seed=9).sample(circuit, 8)
        assert set(default_order.samples) == {(0, 1)}
        reversed_order = TrajectorySimulator(seed=9).sample(
            circuit, 8, qubit_order=[q[1], q[0]]
        )
        assert set(reversed_order.samples) == {(1, 0)}

    def test_statevector_and_trajectory_backends_share_ideal_distribution(self, bell_circuit):
        sv = StateVectorSimulator(seed=10).sample(bell_circuit, 2000, seed=2)
        trajectory = TrajectorySimulator(seed=10).sample(bell_circuit, 2000, seed=2)
        assert np.abs(
            sv.empirical_distribution() - trajectory.empirical_distribution()
        ).max() < 0.06
