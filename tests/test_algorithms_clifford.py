"""Clifford advertisement + dispatch regressions for the algorithm suite.

Every builder that constructs its circuit purely from Clifford gates must
(a) advertise it via ``metadata["clifford"]``, (b) actually classify as
Clifford through the gate-metadata layer, and (c) be routed to the
stabilizer tableau by the hybrid dispatcher — the acceptance contract of
the stabilizer backend.  Non-Clifford builders must keep routing to the
fallback.
"""

import numpy as np
import pytest

from repro.algorithms import (
    bell_state_circuit,
    bernstein_vazirani_circuit,
    deutsch_jozsa_circuit,
    ghz_circuit,
    grover_circuit,
    hidden_shift_circuit,
    qft_circuit,
    random_circuit,
    random_clifford_circuit,
    secret_consistent,
    simon_circuit,
    teleportation_circuit,
)
from repro.sampling import total_variation_distance
from repro.simulator.hybrid import HybridSimulator
from repro.stabilizer import StabilizerSimulator


def clifford_instances():
    return [
        bell_state_circuit(),
        ghz_circuit(4),
        bernstein_vazirani_circuit([1, 0, 1, 1]),
        deutsch_jozsa_circuit(3, oracle="balanced"),
        deutsch_jozsa_circuit(3, oracle="constant", constant_value=1),
        simon_circuit([1, 1, 0]),
        hidden_shift_circuit([1, 0, 1, 1]),
        random_clifford_circuit(4, 6, seed=3),
    ]


def non_clifford_instances():
    return [
        teleportation_circuit(),
        qft_circuit(3),
        grover_circuit([1, 0, 1]),
        random_circuit(3, 3, seed=1),
    ]


class TestCliffordAdvertisement:
    @pytest.mark.parametrize("instance", clifford_instances(), ids=lambda i: i.name)
    def test_metadata_flag_matches_classifier(self, instance):
        assert instance.metadata.get("clifford") is True
        assert instance.is_clifford

    @pytest.mark.parametrize("instance", non_clifford_instances(), ids=lambda i: i.name)
    def test_generic_builders_do_not_classify_clifford(self, instance):
        assert "clifford" not in instance.metadata
        assert not instance.is_clifford


class TestDispatchRouting:
    @pytest.mark.parametrize("instance", clifford_instances(), ids=lambda i: i.name)
    def test_every_clifford_instance_routes_to_tableau(self, instance):
        simulator = HybridSimulator(seed=0)
        simulator.sample(instance.circuit, 16, qubit_order=instance.qubits, seed=0)
        assert simulator.last_decision.backend == "stabilizer"

    @pytest.mark.parametrize("instance", non_clifford_instances(), ids=lambda i: i.name)
    def test_non_clifford_instances_fall_back(self, instance):
        simulator = HybridSimulator(seed=0)
        simulator.sample(instance.circuit, 4, qubit_order=instance.qubits, seed=0)
        assert simulator.last_decision.backend == "state_vector"


class TestStabilizerCorrectness:
    """Per-builder regression: the tableau reproduces each expected outcome."""

    def test_bernstein_vazirani_recovers_secret(self):
        secret = [1, 0, 1, 1, 0, 1]
        instance = bernstein_vazirani_circuit(secret)
        samples = StabilizerSimulator(seed=1).sample(
            instance.circuit, 200, qubit_order=instance.qubits
        )
        for bits in samples.samples:
            assert tuple(bits[: len(secret)]) == tuple(secret)

    @pytest.mark.parametrize("oracle", ["constant", "balanced"])
    def test_deutsch_jozsa_distribution(self, oracle):
        instance = deutsch_jozsa_circuit(3, oracle=oracle)
        samples = StabilizerSimulator(seed=2).sample(
            instance.circuit, 4000, qubit_order=instance.qubits
        )
        tvd = total_variation_distance(
            instance.expected_distribution, samples.empirical_distribution()
        )
        assert tvd < 0.05

    def test_simon_samples_orthogonal_to_secret(self):
        secret = [1, 1, 0]
        instance = simon_circuit(secret)
        samples = StabilizerSimulator(seed=3).sample(
            instance.circuit, 300, qubit_order=instance.qubits
        )
        assert secret_consistent(samples.samples, secret, len(secret))

    def test_hidden_shift_reads_shift_deterministically(self):
        shift = [1, 0, 1, 1, 0, 0]
        instance = hidden_shift_circuit(shift)
        samples = StabilizerSimulator(seed=4).sample(
            instance.circuit, 100, qubit_order=instance.qubits
        )
        assert all(tuple(bits) == tuple(shift) for bits in samples.samples)

    def test_ghz_and_bell_supports(self):
        for instance, width in ((bell_state_circuit(), 2), (ghz_circuit(5), 5)):
            samples = StabilizerSimulator(seed=5).sample(
                instance.circuit, 400, qubit_order=instance.qubits
            )
            observed = {tuple(bits) for bits in samples.samples}
            assert observed == {tuple([0] * width), tuple([1] * width)}

    def test_wide_bernstein_vazirani_far_beyond_dense_reach(self):
        """A 48-bit secret: 49 qubits, infeasible for every 2^n backend."""
        rng = np.random.default_rng(8)
        secret = [int(b) for b in rng.integers(0, 2, size=48)]
        instance = bernstein_vazirani_circuit(secret)
        samples = StabilizerSimulator(seed=6).sample(
            instance.circuit, 32, qubit_order=instance.qubits
        )
        for bits in samples.samples:
            assert tuple(bits[:48]) == tuple(secret)
