"""Stabilizer-backend unit tests: tableau semantics and measurement edge cases."""

import numpy as np
import pytest

from repro.circuits import CNOT, CZ, Circuit, H, LineQubit, S, T, X, measure
from repro.circuits.noise import amplitude_damp, bit_flip, depolarize
from repro.stabilizer import StabilizerSimulator, Tableau, gf2_row_basis
from repro.statevector import StateVectorSimulator


@pytest.fixture
def ghz3():
    q = LineQubit.range(3)
    return Circuit([H(q[0]), CNOT(q[0], q[1]), CNOT(q[1], q[2])])


class TestMeasurementEdgeCases:
    def test_fresh_state_is_deterministic_zero(self):
        tableau = Tableau(3)
        for qubit in range(3):
            outcome, deterministic = tableau.measure(qubit)
            assert outcome == 0 and deterministic

    def test_flipped_qubit_is_deterministic_one(self):
        tableau = Tableau(2, initial_bits=[0, 1])
        assert tableau.measure(0) == (0, True)
        assert tableau.measure(1) == (1, True)

    def test_ghz_first_random_rest_deterministic(self, ghz3):
        rng = np.random.default_rng(5)
        result = StabilizerSimulator().simulate(ghz3)
        first, first_deterministic = result.measure(0, rng)
        assert first_deterministic is False
        for position in (1, 2):
            outcome, deterministic = result.measure(position, rng)
            assert deterministic is True
            assert outcome == first

    def test_repeated_measurement_is_idempotent(self, ghz3):
        rng = np.random.default_rng(9)
        result = StabilizerSimulator().simulate(ghz3)
        first, _ = result.measure(0, rng)
        for _ in range(3):
            outcome, deterministic = result.measure(0, rng)
            assert deterministic is True
            assert outcome == first

    def test_random_measurement_requires_rng_or_forced(self):
        tableau = Tableau(1)
        tableau.h(0)
        with pytest.raises(ValueError, match="rng"):
            tableau.measure(0)

    @pytest.mark.parametrize("forced", [0, 1])
    def test_forced_branch_selects_post_measurement_state(self, forced):
        tableau = Tableau(1)
        tableau.h(0)
        outcome, deterministic = tableau.measure(0, forced=forced)
        assert (outcome, deterministic) == (forced, False)
        state = tableau.state_vector()
        expected = np.zeros(2, dtype=complex)
        expected[forced] = 1.0
        np.testing.assert_allclose(np.abs(state), np.abs(expected), atol=1e-12)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_post_measurement_state_matches_projected_statevector(self, circuit_fuzzer, seed):
        """Collapse parity: tableau post-measurement state == renormalized projection."""
        circuit = circuit_fuzzer(seed, 4, 6, alphabet="clifford")
        dense = StateVectorSimulator().simulate(circuit).state_vector
        result = StabilizerSimulator().simulate(circuit)
        rng = np.random.default_rng(seed + 100)
        outcome, _ = result.measure(0, rng)
        projected = dense.copy().reshape(2, 8)
        projected[1 - outcome] = 0.0
        projected = projected.reshape(16)
        norm = np.linalg.norm(projected)
        assert norm > 1e-9  # the sampled outcome must have support
        projected = projected / norm
        collapsed = result.tableau.state_vector()
        anchor = int(np.argmax(np.abs(projected)))
        phase = collapsed[anchor] / projected[anchor]
        np.testing.assert_allclose(phase.conjugate() * collapsed, projected, atol=1e-9)

    def test_measurement_gates_in_circuit_are_terminal(self, ghz3):
        q = LineQubit.range(3)
        with_measurements = ghz3.copy()
        with_measurements.append(measure(*q))
        counts = StabilizerSimulator(seed=2).sample(with_measurements, 500).bitstring_counts()
        assert set(counts) <= {"000", "111"}


class TestSampling:
    def test_ghz_sampling_support_and_balance(self, ghz3):
        counts = StabilizerSimulator(seed=11).sample(ghz3, 2000).bitstring_counts()
        assert set(counts) <= {"000", "111"}
        assert abs(counts["000"] / 2000 - 0.5) < 0.05

    def test_per_call_seed_reproducible(self, ghz3):
        simulator = StabilizerSimulator(seed=1)
        first = simulator.sample(ghz3, 50, seed=42).samples
        second = simulator.sample(ghz3, 50, seed=42).samples
        assert first == second

    def test_default_generator_advances(self, ghz3):
        simulator = StabilizerSimulator(seed=1)
        first = simulator.sample(ghz3, 200).samples
        second = simulator.sample(ghz3, 200).samples
        assert first != second

    def test_qubit_order_controls_bit_positions(self):
        q = LineQubit.range(2)
        circuit = Circuit([X(q[1])])
        forward = StabilizerSimulator(seed=0).sample(circuit, 10, qubit_order=[q[0], q[1]])
        reversed_order = StabilizerSimulator(seed=0).sample(
            circuit, 10, qubit_order=[q[1], q[0]]
        )
        assert all(bits == (0, 1) for bits in forward.samples)
        assert all(bits == (1, 0) for bits in reversed_order.samples)

    def test_initial_state_kwarg(self, ghz3):
        # |100> input: H takes the flipped qubit to |->, CNOTs copy nothing new;
        # the support stays {000, 011}-style -- just cross-check the dense backend.
        exact = StateVectorSimulator().simulate(ghz3, initial_state=4).probabilities()
        samples = StabilizerSimulator(seed=3).sample(ghz3, 3000, initial_state=4)
        observed = samples.empirical_distribution()
        assert np.all(observed[exact < 1e-12] == 0)

    def test_fifty_plus_qubit_ghz(self):
        qubits = LineQubit.range(60)
        circuit = Circuit([H(qubits[0])])
        for a, b in zip(qubits, qubits[1:]):
            circuit.append(CNOT(a, b))
        samples = StabilizerSimulator(seed=7).sample(circuit, 500)
        observed = {tuple(bits) for bits in samples.samples}
        assert observed <= {tuple([0] * 60), tuple([1] * 60)}
        assert len(observed) == 2


class TestNoise:
    def test_certain_bit_flip_flips_outcome(self):
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(bit_flip(1.0).on(q))
        samples = StabilizerSimulator(seed=0).sample(circuit, 40)
        assert all(bits == (0,) for bits in samples.samples)

    def test_depolarizing_rate_on_idle_qubit(self):
        q = LineQubit(0)
        circuit = Circuit([H(q), H(q)])
        circuit.append(depolarize(0.3).on(q))
        samples = StabilizerSimulator(seed=5).sample(circuit, 5000)
        ones = sum(bits[0] for bits in samples.samples) / 5000
        assert abs(ones - 0.2) < 0.02  # X or Y branch flips: 2/3 * 0.3

    def test_simulate_refuses_noise(self):
        q = LineQubit(0)
        circuit = Circuit([H(q)])
        circuit.append(bit_flip(0.1).on(q))
        with pytest.raises(ValueError, match="ideal circuits"):
            StabilizerSimulator().simulate(circuit)

    def test_non_pauli_channel_rejected(self):
        q = LineQubit(0)
        circuit = Circuit([H(q)])
        circuit.append(amplitude_damp(0.2).on(q))
        with pytest.raises(ValueError, match="Pauli"):
            StabilizerSimulator(seed=0).sample(circuit, 10)


class TestGuards:
    def test_non_clifford_gate_named_in_error(self):
        q = LineQubit(0)
        circuit = Circuit([H(q), T(q)])
        with pytest.raises(ValueError, match=r"non-Clifford.*T"):
            StabilizerSimulator().simulate(circuit)

    def test_dense_state_vector_cap(self):
        qubits = LineQubit.range(16)
        circuit = Circuit([H(q) for q in qubits])
        result = StabilizerSimulator().simulate(circuit)
        with pytest.raises(ValueError, match="state vector capped"):
            _ = result.state_vector

    def test_dense_probability_cap(self):
        qubits = LineQubit.range(24)
        circuit = Circuit([H(q) for q in qubits])
        result = StabilizerSimulator().simulate(circuit)
        with pytest.raises(ValueError, match="probabilities capped"):
            result.probabilities()
        # Sampling still works far beyond the dense caps.
        assert len(result.sample(10, np.random.default_rng(0))) == 10

    def test_repetitions_must_be_positive(self, ghz3):
        with pytest.raises(ValueError, match="repetitions"):
            StabilizerSimulator().sample(ghz3, 0)


class TestTableauInternals:
    def test_gf2_row_basis_rank(self):
        matrix = np.array(
            [[1, 0, 1, 0], [0, 1, 1, 0], [1, 1, 0, 0], [0, 0, 0, 0]], dtype=bool
        )
        basis = gf2_row_basis(matrix)
        assert basis.shape == (2, 4)

    def test_support_of_stabilizer_product_state(self):
        tableau = Tableau(3)
        tableau.h(0)
        tableau.h(2)
        x0, basis = tableau.support()
        assert basis.shape[0] == 2  # two free qubits
        # Qubit 0 is the MSB (weight 4), qubit 2 the LSB (weight 1); qubit 1
        # stays pinned at 0, so the support is {000, 001, 100, 101}.
        probabilities = tableau.probabilities()
        np.testing.assert_allclose(
            probabilities, [0.25, 0.25, 0.0, 0.0, 0.25, 0.25, 0.0, 0.0], atol=1e-12
        )

    def test_entangled_support_dimension(self):
        tableau = Tableau(2)
        tableau.h(0)
        tableau.cnot(0, 1)
        _, basis = tableau.support()
        assert basis.shape[0] == 1  # Bell support {00, 11} has GF(2) dimension 1

    def test_s_gate_phase_visible_in_state(self):
        tableau = Tableau(1)
        tableau.h(0)
        tableau.s(0)
        state = tableau.state_vector()
        dense = StateVectorSimulator().simulate(
            Circuit([H(LineQubit(0)), S(LineQubit(0))])
        ).state_vector
        phase = dense[0] / state[0]
        np.testing.assert_allclose(phase * state, dense, atol=1e-9)

    def test_cz_phase_rule_matches_dense(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), H(q[1]), S(q[0]), CZ(q[0], q[1]), H(q[1])])
        dense = StateVectorSimulator().simulate(circuit).state_vector
        tableau = StabilizerSimulator().simulate(circuit).state_vector
        phase = dense[int(np.argmax(np.abs(dense)))] / tableau[int(np.argmax(np.abs(dense)))]
        np.testing.assert_allclose(phase * tableau, dense, atol=1e-9)

    def test_tableau_copy_is_independent(self):
        tableau = Tableau(2)
        duplicate = tableau.copy()
        duplicate.h(0)
        assert tableau.measure(0) == (0, True)

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError, match="unknown stabilizer primitive"):
            Tableau(1).apply("T", (0,))
