"""Tests for the batched arithmetic-circuit evaluation engine.

The batched APIs (``evaluate_batch`` / ``evaluate_with_derivatives_batch`` /
``CompiledCircuit.amplitudes``) must agree with the scalar path elementwise —
including the forced-literal shortcut and all-zero-amplitude rows — and the
multi-chain Gibbs ensemble must converge to the exact output distribution.
"""

import itertools

import numpy as np
import pytest

from repro.circuits import CNOT, Circuit, H, LineQubit, Ry, Rz, depolarize
from repro.sampling import GibbsSampler, total_variation_distance
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator


def _random_literal_batch(circuit_ac, batch, rng):
    literal_values = np.ones((batch, circuit_ac.num_vars + 1, 2), dtype=complex)
    literal_values += 0.5 * (
        rng.standard_normal(literal_values.shape)
        + 1j * rng.standard_normal(literal_values.shape)
    )
    # Sprinkle exact zeros so the zero-bookkeeping paths are exercised.
    zero_mask = rng.random(literal_values.shape) < 0.15
    literal_values[zero_mask] = 0.0
    return literal_values


@pytest.fixture
def compiled_ideal():
    q = LineQubit.range(3)
    circuit = Circuit(
        [Ry(0.9)(q[0]), H(q[1]), CNOT(q[0], q[1]), Rz(0.4)(q[1]), CNOT(q[1], q[2])]
    )
    return KnowledgeCompilationSimulator(seed=2).compile_circuit(circuit)


@pytest.fixture
def compiled_noisy():
    q = LineQubit.range(2)
    circuit = Circuit([Ry(1.1)(q[0]), CNOT(q[0], q[1])]).with_noise(
        lambda: depolarize(0.08)
    )
    return KnowledgeCompilationSimulator(seed=3).compile_circuit(circuit)


class TestBatchedEvaluation:
    @pytest.mark.parametrize("fixture", ["compiled_ideal", "compiled_noisy"])
    def test_evaluate_batch_matches_scalar(self, fixture, request):
        compiled = request.getfixturevalue(fixture)
        ac = compiled.arithmetic_circuit
        rng = np.random.default_rng(7)
        literal_values = _random_literal_batch(ac, 9, rng)
        batched = ac.evaluate_batch(literal_values)
        for row in range(literal_values.shape[0]):
            scalar = ac.evaluate(literal_values[row])
            assert batched[row] == pytest.approx(scalar, abs=1e-10)

    @pytest.mark.parametrize("fixture", ["compiled_ideal", "compiled_noisy"])
    def test_derivatives_batch_matches_scalar(self, fixture, request):
        compiled = request.getfixturevalue(fixture)
        ac = compiled.arithmetic_circuit
        rng = np.random.default_rng(11)
        literal_values = _random_literal_batch(ac, 7, rng)
        roots, derivatives = ac.evaluate_with_derivatives_batch(literal_values)
        for row in range(literal_values.shape[0]):
            scalar_root, scalar_derivatives = ac.evaluate_with_derivatives(
                literal_values[row]
            )
            assert roots[row] == pytest.approx(scalar_root, abs=1e-10)
            np.testing.assert_allclose(
                derivatives[row], scalar_derivatives, atol=1e-10
            )

    def test_all_zero_amplitude_rows(self, compiled_ideal):
        ac = compiled_ideal.arithmetic_circuit
        literal_values = np.zeros((3, ac.num_vars + 1, 2), dtype=complex)
        roots, derivatives = ac.evaluate_with_derivatives_batch(literal_values)
        assert np.all(roots == 0.0)
        for row in range(3):
            scalar_root, scalar_derivatives = ac.evaluate_with_derivatives(
                literal_values[row]
            )
            assert roots[row] == pytest.approx(scalar_root, abs=1e-10)
            np.testing.assert_allclose(derivatives[row], scalar_derivatives, atol=1e-10)

    def test_batch_shape_validation(self, compiled_ideal):
        ac = compiled_ideal.arithmetic_circuit
        with pytest.raises(ValueError):
            ac.evaluate_batch(np.ones((ac.num_vars + 1, 2), dtype=complex))

    def test_empty_batch(self, compiled_ideal):
        ac = compiled_ideal.arithmetic_circuit
        empty = np.ones((0, ac.num_vars + 1, 2), dtype=complex)
        assert ac.evaluate_batch(empty).shape == (0,)
        roots, derivatives = ac.evaluate_with_derivatives_batch(empty)
        assert roots.shape == (0,)
        assert derivatives.shape == empty.shape

    def test_workspace_reuse_across_batch_sizes(self, compiled_ideal):
        """Alternating batch sizes must not corrupt results."""
        ac = compiled_ideal.arithmetic_circuit
        rng = np.random.default_rng(13)
        small = _random_literal_batch(ac, 2, rng)
        large = _random_literal_batch(ac, 6, rng)
        expected_small = [ac.evaluate(small[i]) for i in range(2)]
        expected_large = [ac.evaluate(large[i]) for i in range(6)]
        np.testing.assert_allclose(ac.evaluate_batch(large), expected_large, atol=1e-10)
        np.testing.assert_allclose(ac.evaluate_batch(small), expected_small, atol=1e-10)
        np.testing.assert_allclose(ac.evaluate_batch(large), expected_large, atol=1e-10)


class TestBatchedAmplitudes:
    def test_amplitudes_match_scalar_ideal(self, compiled_ideal):
        bit_matrix = np.asarray(list(itertools.product([0, 1], repeat=3)), dtype=np.int64)
        batched = compiled_ideal.amplitudes(bit_matrix)
        for row, bits in enumerate(bit_matrix):
            assert batched[row] == pytest.approx(
                compiled_ideal.amplitude(list(bits)), abs=1e-10
            )

    def test_amplitudes_match_scalar_noisy(self, compiled_noisy):
        bit_matrix = np.asarray(list(itertools.product([0, 1], repeat=2)), dtype=np.int64)
        cardinalities = [v.cardinality for v in compiled_noisy.noise_variables]
        for branches in itertools.product(*[range(c) for c in cardinalities]):
            branch_row = np.asarray(branches, dtype=np.int64)[np.newaxis]
            batched = compiled_noisy.amplitudes(bit_matrix, noise_branches=branch_row)
            for row, bits in enumerate(bit_matrix):
                scalar = compiled_noisy.amplitude(list(bits), noise_branches=branches)
                assert batched[row] == pytest.approx(scalar, abs=1e-10)

    def test_forced_literal_shortcut_rows(self):
        """Rows contradicting a CNF-forced literal must come back exactly zero."""
        # The idle second qubit's final state is forced to 0 by unit
        # propagation, so asking for it to be 1 hits the forced-literal
        # shortcut rather than a circuit evaluation.
        q = LineQubit.range(2)
        compiled = KnowledgeCompilationSimulator(seed=5).compile_circuit(
            Circuit([Ry(0.7)(q[0]), Ry(0.0)(q[1])])
        )
        encoding = compiled.encoding
        forced_bits = [
            (variable, int(encoding.forced_value(bit_var)))
            for variable in compiled.final_variables
            for bit_var in variable.bit_vars
            if encoding.forced_value(bit_var) is not None
        ]
        assert forced_bits, "expected the idle qubit's final bit to be forced"
        variable, forced = forced_bits[0]
        column = compiled.final_variables.index(variable)
        bit_matrix = np.zeros((2, compiled.num_qubits), dtype=np.int64)
        bit_matrix[0, column] = 1 - forced  # contradicts the forced literal
        bit_matrix[1, column] = forced
        batched = compiled.amplitudes(bit_matrix)
        assert batched[0] == 0.0
        assert batched[0] == pytest.approx(
            compiled.amplitude(list(bit_matrix[0])), abs=1e-12
        )

    def test_amplitudes_chunking_is_invisible(self, compiled_ideal):
        bit_matrix = np.asarray(list(itertools.product([0, 1], repeat=3)), dtype=np.int64)
        one_chunk = compiled_ideal.amplitudes(bit_matrix, chunk_size=1024)
        tiny_chunks = compiled_ideal.amplitudes(bit_matrix, chunk_size=3)
        np.testing.assert_allclose(one_chunk, tiny_chunks, atol=1e-12)

    def test_state_vector_probabilities_consistent(self, compiled_ideal):
        state = compiled_ideal.state_vector()
        assert np.abs(state) ** 2 == pytest.approx(compiled_ideal.probabilities(), abs=1e-10)
        assert float(np.sum(np.abs(state) ** 2)) == pytest.approx(1.0, abs=1e-9)

    def test_noisy_probabilities_match_density_matrix(self, compiled_noisy):
        probabilities = compiled_noisy.probabilities()
        diagonal = np.real(np.diag(compiled_noisy.density_matrix())).clip(min=0.0)
        np.testing.assert_allclose(probabilities, diagonal, atol=1e-10)


class TestMultiChainSampling:
    def test_multi_chain_converges_in_tvd(self, compiled_ideal):
        sampler = GibbsSampler(compiled_ideal, rng=np.random.default_rng(17))
        samples = sampler.sample(4000, burn_in_sweeps=5, num_chains=32)
        exact = compiled_ideal.probabilities()
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.12

    def test_noisy_multi_chain_converges_in_tvd(self, compiled_noisy):
        sampler = GibbsSampler(
            compiled_noisy, rng=np.random.default_rng(19), restart_probability=0.2
        )
        samples = sampler.sample(4000, burn_in_sweeps=5, steps_per_sample=4, num_chains=64)
        exact = compiled_noisy.probabilities()
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.10

    def test_num_chains_plumbed_through_simulator(self, compiled_ideal):
        simulator = KnowledgeCompilationSimulator(seed=23)
        result = simulator.sample(compiled_ideal, 100, num_chains=8)
        assert len(result.samples) == 100

    def test_single_chain_equals_default_semantics(self, compiled_ideal):
        """num_chains=1 still produces valid, reproducible samples."""
        first = GibbsSampler(compiled_ideal, rng=np.random.default_rng(29)).sample(
            40, num_chains=1
        )
        second = GibbsSampler(compiled_ideal, rng=np.random.default_rng(29)).sample(
            40, num_chains=1
        )
        assert first.samples == second.samples

    def test_warm_ensemble_continues_chains(self, compiled_ideal):
        """Repeated sample() calls reuse the equilibrated ensemble and stay valid."""
        sampler = GibbsSampler(compiled_ideal, rng=np.random.default_rng(31))
        sampler.sample(256, num_chains=32)
        assert sampler._ensemble is not None
        combined = []
        for _ in range(8):
            combined.extend(sampler.sample(512, num_chains=32).samples)
        exact = compiled_ideal.probabilities()
        empirical = np.bincount(
            [int("".join(map(str, s)), 2) for s in combined], minlength=len(exact)
        ) / len(combined)
        assert total_variation_distance(exact, empirical) < 0.12
