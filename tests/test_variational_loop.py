"""Tests for the hybrid quantum-classical variational loop."""

import numpy as np
import pytest

from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator
from repro.variational import (
    NelderMeadOptimizer,
    QAOACircuit,
    VariationalLoop,
    VQECircuit,
    ring_maxcut,
    square_grid_ising,
)


class TestVariationalLoopWithStateVector:
    def test_qaoa_ring_finds_good_cut(self):
        problem = ring_maxcut(4)
        ansatz = QAOACircuit(problem, iterations=1)
        loop = VariationalLoop(
            ansatz,
            StateVectorSimulator(seed=2),
            samples_per_evaluation=256,
            optimizer=NelderMeadOptimizer(max_iterations=30, initial_step=0.4),
            seed=2,
        )
        run = loop.run(initial_parameters=np.array([0.6, 0.3]))
        # The optimum cut of a 4-ring is 4; sampled mean cost should approach -4
        # but certainly beat the uniform-superposition mean of -2.
        assert run.best_value < -2.4
        assert run.num_circuit_executions == len(run.objective_trace) + 1

    def test_vqe_two_site_chain(self):
        model = square_grid_ising(2, field=0.0)
        ansatz = VQECircuit(model, iterations=1)
        loop = VariationalLoop(
            ansatz,
            StateVectorSimulator(seed=5),
            samples_per_evaluation=256,
            optimizer=NelderMeadOptimizer(max_iterations=40, initial_step=0.5),
            seed=5,
        )
        run = loop.run()
        # Ground-state energy of the antiferromagnetic 2-site chain is -1.
        assert run.best_value <= -0.5


class TestVariationalLoopWithKnowledgeCompilation:
    def test_compiles_once_and_improves(self):
        problem = ring_maxcut(4)
        ansatz = QAOACircuit(problem, iterations=1)
        simulator = KnowledgeCompilationSimulator(seed=7)
        loop = VariationalLoop(
            ansatz,
            simulator,
            samples_per_evaluation=128,
            optimizer=NelderMeadOptimizer(max_iterations=12, initial_step=0.4),
            seed=7,
        )
        assert loop._compiled is not None  # compiled eagerly, reused across iterations
        run = loop.run(initial_parameters=np.array([0.6, 0.3]))
        assert run.best_value <= -2.0
        assert len(run.best_samples) == 128

    def test_objective_trace_recorded(self):
        problem = ring_maxcut(4)
        ansatz = QAOACircuit(problem, iterations=1)
        loop = VariationalLoop(
            ansatz,
            KnowledgeCompilationSimulator(seed=3),
            samples_per_evaluation=64,
            optimizer=NelderMeadOptimizer(max_iterations=5),
            seed=3,
        )
        run = loop.run(initial_parameters=np.array([0.5, 0.5]))
        assert len(run.objective_trace) >= 3
        assert all(isinstance(value, float) for value in run.objective_trace)
