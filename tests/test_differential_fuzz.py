"""Cross-backend differential fuzzing.

Draws seeded random circuits from the ``circuit_fuzzer`` conftest fixture
(four gate alphabets: Clifford-only, Clifford+T, universal, noisy-Pauli) and
cross-checks every backend pairwise on

* exact output probabilities (the dense density matrix as ground truth),
* final state vectors up to global phase,
* sampled histograms (total-variation-distance bound against the exact
  distribution).

The corpus is small and fully seeded so the suite is deterministic and
CI-cheap; a new backend gets fuzzed by adding one entry to
``_ideal_probability_backends`` below.
"""

import numpy as np
import pytest

from repro.densitymatrix import DensityMatrixSimulator
from repro.sampling import total_variation_distance
from repro.simulator.hybrid import HybridSimulator
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StateVectorSimulator
from repro.tensornetwork import TensorNetworkSimulator
from repro.trajectory import TrajectorySimulator

#: Clifford-only corpus; entries with n <= 10 back the 1e-10 acceptance bound.
CLIFFORD_CORPUS = [
    (seed, num_qubits, depth)
    for seed in (0, 1, 2)
    for num_qubits, depth in ((2, 6), (4, 8))
] + [(7, 6, 10), (8, 8, 10), (9, 10, 12)]

#: Universal-alphabet corpus (kept tiny: the KC backend compiles each one).
UNIVERSAL_CORPUS = [(seed, 3, 4) for seed in (0, 1, 2)] + [(3, 4, 3)]

CLIFFORD_T_CORPUS = [(seed, 3, 5) for seed in (0, 1)]

NOISY_CORPUS = [(seed, 3, 3) for seed in (0, 1, 2)]


def _ideal_probability_backends(num_qubits):
    """Backend name -> exact probability vector callable, for ideal circuits.

    Future backends join the pairwise cross-check by adding one entry here.
    """
    backends = {
        "state_vector": lambda c: StateVectorSimulator().simulate(c).probabilities(),
        "density_matrix": lambda c: DensityMatrixSimulator().simulate(c).probabilities(),
        "tensor_network": lambda c: TensorNetworkSimulator().simulate(c).probabilities(),
        "knowledge_compilation": lambda c: (
            KnowledgeCompilationSimulator(seed=0).simulate(c).probabilities()
        ),
        "hybrid": lambda c: HybridSimulator(seed=0).simulate(c).probabilities(),
    }
    return backends


def _state_vector_backends():
    return {
        "state_vector": lambda c: StateVectorSimulator().simulate(c).state_vector,
        "tensor_network": lambda c: TensorNetworkSimulator().simulate(c).state_vector,
        "knowledge_compilation": lambda c: (
            KnowledgeCompilationSimulator(seed=0).simulate(c).state_vector
        ),
    }


def _assert_equal_up_to_global_phase(a, b, atol, context=""):
    anchor = int(np.argmax(np.abs(a)))
    assert abs(a[anchor]) > atol, context
    phase = b[anchor] / a[anchor]
    assert abs(abs(phase) - 1.0) < 1e-7, context
    np.testing.assert_allclose(phase.conjugate() * b, a, atol=atol, err_msg=context)


class TestCliffordAlphabet:
    """Stabilizer backend vs. the dense ground truth on Clifford circuits."""

    @pytest.mark.parametrize("seed,num_qubits,depth", CLIFFORD_CORPUS)
    def test_probabilities_match_statevector_to_1e10(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="clifford")
        exact = StateVectorSimulator().simulate(circuit).probabilities()
        tableau = StabilizerSimulator().simulate(circuit).probabilities()
        np.testing.assert_allclose(tableau, exact, atol=1e-10)

    @pytest.mark.parametrize("seed,num_qubits,depth", CLIFFORD_CORPUS)
    def test_state_vectors_match_up_to_global_phase(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="clifford")
        dense = StateVectorSimulator().simulate(circuit).state_vector
        tableau = StabilizerSimulator().simulate(circuit).state_vector
        _assert_equal_up_to_global_phase(dense, tableau, 1e-9, f"seed={seed} n={num_qubits}")

    @pytest.mark.parametrize("seed,num_qubits,depth", CLIFFORD_CORPUS[:4])
    def test_sampled_histogram_tvd(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="clifford")
        exact = StateVectorSimulator().simulate(circuit).probabilities()
        samples = StabilizerSimulator(seed=17).sample(circuit, 4000)
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.06

    def test_hybrid_routes_clifford_to_stabilizer(self, circuit_fuzzer):
        circuit = circuit_fuzzer(0, 4, 8, alphabet="clifford")
        simulator = HybridSimulator(seed=0)
        simulator.simulate(circuit)
        assert simulator.last_decision.backend == "stabilizer"

    def test_initial_state_parity(self, circuit_fuzzer):
        circuit = circuit_fuzzer(4, 4, 6, alphabet="clifford")
        for initial in (1, 5, 15):
            dense = StateVectorSimulator().simulate(circuit, initial_state=initial)
            tableau = StabilizerSimulator().simulate(circuit, initial_state=initial)
            np.testing.assert_allclose(
                tableau.probabilities(), dense.probabilities(), atol=1e-10
            )


class TestUniversalAlphabet:
    """All exact backends agree pairwise on generic circuits."""

    @pytest.mark.parametrize("seed,num_qubits,depth", UNIVERSAL_CORPUS)
    def test_pairwise_probability_parity(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="universal")
        results = {
            name: backend(circuit)
            for name, backend in _ideal_probability_backends(num_qubits).items()
        }
        names = sorted(results)
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                np.testing.assert_allclose(
                    results[first],
                    results[second],
                    atol=1e-9,
                    err_msg=f"{first} vs {second} (seed={seed})",
                )

    @pytest.mark.parametrize("seed,num_qubits,depth", UNIVERSAL_CORPUS[:2])
    def test_pairwise_state_vector_parity(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="universal")
        results = {name: backend(circuit) for name, backend in _state_vector_backends().items()}
        names = sorted(results)
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                _assert_equal_up_to_global_phase(
                    results[first], results[second], 1e-9, f"{first} vs {second}"
                )

    @pytest.mark.parametrize("seed,num_qubits,depth", UNIVERSAL_CORPUS[:2])
    def test_sampled_histogram_tvd(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="universal")
        exact = StateVectorSimulator().simulate(circuit).probabilities()
        dense_samples = StateVectorSimulator(seed=5).sample(circuit, 4000)
        assert total_variation_distance(exact, dense_samples.empirical_distribution()) < 0.06
        kc_samples = KnowledgeCompilationSimulator(seed=5).sample(circuit, 4000)
        assert total_variation_distance(exact, kc_samples.empirical_distribution()) < 0.08


class TestCliffordPlusTAlphabet:
    """T gates must route off the tableau and still agree with ground truth."""

    @pytest.mark.parametrize("seed,num_qubits,depth", CLIFFORD_T_CORPUS)
    def test_stabilizer_refuses_and_hybrid_falls_back(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="clifford+t")
        with pytest.raises(ValueError, match="Clifford"):
            StabilizerSimulator().simulate(circuit)
        simulator = HybridSimulator(seed=0)
        result = simulator.simulate(circuit)
        assert simulator.last_decision.backend == "state_vector"
        exact = StateVectorSimulator().simulate(circuit).probabilities()
        np.testing.assert_allclose(result.probabilities(), exact, atol=1e-10)


class TestNoisyPauliAlphabet:
    """Noisy-Pauli circuits: exact backends agree; samplers converge."""

    @pytest.mark.parametrize("seed,num_qubits,depth", NOISY_CORPUS)
    def test_exact_backends_agree(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="pauli-noise")
        assert circuit.has_noise
        dense = DensityMatrixSimulator().simulate(circuit).probabilities()
        compiled = KnowledgeCompilationSimulator(seed=0).simulate_density_matrix(circuit)
        np.testing.assert_allclose(compiled.probabilities(), dense, atol=1e-9)

    @pytest.mark.parametrize("seed,num_qubits,depth", NOISY_CORPUS)
    def test_stochastic_samplers_converge(self, circuit_fuzzer, seed, num_qubits, depth):
        circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet="pauli-noise")
        exact = DensityMatrixSimulator().simulate(circuit).probabilities()
        exact = exact / exact.sum()
        tableau = StabilizerSimulator(seed=23).sample(circuit, 4000)
        assert total_variation_distance(exact, tableau.empirical_distribution()) < 0.06
        trajectory = TrajectorySimulator(seed=23).sample(circuit, 4000)
        assert total_variation_distance(exact, trajectory.empirical_distribution()) < 0.06

    def test_hybrid_routes_pauli_noise_sampling_to_stabilizer(self, circuit_fuzzer):
        circuit = circuit_fuzzer(0, 3, 3, alphabet="pauli-noise")
        simulator = HybridSimulator(seed=0)
        exact = DensityMatrixSimulator().simulate(circuit).probabilities()
        samples = simulator.sample(circuit, 4000, seed=29)
        assert simulator.last_decision.backend == "stabilizer"
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.06


def _measured_qubits(circuit):
    measured = {
        qubit
        for operation in circuit.all_operations()
        if operation.is_measurement
        for qubit in operation.qubits
    }
    return sorted(measured)


def _comparable_distribution(probabilities, qubit_order, measured):
    """Marginal over the measured qubits (or the full distribution if none).

    Light-cone pruning only promises the joint distribution over *measured*
    qubits, so measured circuits compare on that marginal; circuits without
    measurement gates must match on the full state.
    """
    if not measured:
        return np.asarray(probabilities)
    n = len(qubit_order)
    keep = [qubit_order.index(qubit) for qubit in measured]
    drop = tuple(axis for axis in range(n) if axis not in keep)
    tensor = np.asarray(probabilities).reshape((2,) * n)
    return (tensor.sum(axis=drop) if drop else tensor).reshape(-1)


#: 5 alphabets x 100 seeds = 500 seeded circuits through the bulk parity
#: check, spanning all four optimizer passes (each rewrite alphabet targets
#: one) plus the unstructured universal alphabet.
OPTIMIZER_BULK_ALPHABETS = (
    "rotation-chains",
    "commuting-blocks",
    "clifford-prefix",
    "spectator",
    "universal",
)
OPTIMIZER_BULK_SEEDS = 100

#: Small corpus for the per-backend parity matrix (the KC backend compiles
#: every entry twice).  The stabilizer joins on the Clifford-only alphabets.
OPTIMIZER_BACKEND_CORPUS = [
    (alphabet, seed)
    for alphabet in ("rotation-chains", "commuting-blocks", "clifford-prefix", "spectator", "clifford")
    for seed in (0, 1)
]
_STABILIZER_ALPHABETS = ("spectator", "clifford")


class TestOptimizedVsUnoptimized:
    """The default pass pipeline must preserve semantics on every backend.

    Bulk: >= 500 seeded circuits against the state-vector reference at
    1e-10 (full state, or the measured-qubit marginal for circuits with
    measurement gates — the light-cone contract).  Matrix: a smaller corpus
    where *each* of the six backends runs the optimized and unoptimized
    circuit and must agree with itself at 1e-10.
    """

    @pytest.mark.parametrize("alphabet", OPTIMIZER_BULK_ALPHABETS)
    def test_bulk_parity_500_circuits(self, circuit_fuzzer, alphabet):
        from repro.circuits.passes import optimize_circuit

        total_rewrites = 0
        for seed in range(OPTIMIZER_BULK_SEEDS):
            num_qubits = 3 + seed % 3
            depth = 4 + seed % 3
            circuit = circuit_fuzzer(seed, num_qubits, depth, alphabet=alphabet)
            result = optimize_circuit(circuit)
            total_rewrites += sum(stats.rewrites for stats in result.stats.passes)
            assert len(result.circuit.all_operations()) <= len(circuit.all_operations())
            qubits = circuit.all_qubits()
            measured = _measured_qubits(circuit)
            base = StateVectorSimulator().simulate(circuit, qubit_order=qubits).probabilities()
            optimized = (
                StateVectorSimulator().simulate(result.circuit, qubit_order=qubits).probabilities()
            )
            np.testing.assert_allclose(
                _comparable_distribution(optimized, qubits, measured),
                _comparable_distribution(base, qubits, measured),
                atol=1e-10,
                err_msg=f"alphabet={alphabet} seed={seed}",
            )
        # The corpus must actually exercise the passes, not vacuously pass.
        if alphabet != "universal":
            assert total_rewrites > OPTIMIZER_BULK_SEEDS

    @pytest.mark.parametrize("alphabet,seed", OPTIMIZER_BACKEND_CORPUS)
    def test_per_backend_parity_matrix(self, circuit_fuzzer, alphabet, seed):
        from repro.circuits.passes import optimize_circuit

        circuit = circuit_fuzzer(seed, 3, 4, alphabet=alphabet)
        optimized = optimize_circuit(circuit).circuit
        qubits = circuit.all_qubits()
        measured = _measured_qubits(circuit)
        backends = {
            "state_vector": StateVectorSimulator(),
            "density_matrix": DensityMatrixSimulator(),
            "tensor_network": TensorNetworkSimulator(),
            "trajectory": TrajectorySimulator(seed=0),
            "knowledge_compilation": KnowledgeCompilationSimulator(seed=0),
        }
        if alphabet in _STABILIZER_ALPHABETS:
            backends["stabilizer"] = StabilizerSimulator()
        for name, simulator in backends.items():
            base = simulator.simulate(circuit, qubit_order=qubits).probabilities()
            rewritten = simulator.simulate(optimized, qubit_order=qubits).probabilities()
            np.testing.assert_allclose(
                _comparable_distribution(rewritten, qubits, measured),
                _comparable_distribution(base, qubits, measured),
                atol=1e-10,
                err_msg=f"backend={name} alphabet={alphabet} seed={seed}",
            )

    def test_device_run_optimize_auto_parity(self, circuit_fuzzer):
        import repro

        circuit = circuit_fuzzer(3, 3, 4, alphabet="rotation-chains")
        device = repro.device("auto")
        base = device.run([circuit]).result().rows[0]["probabilities"]
        optimized = device.run([circuit], optimize="auto").result().rows[0]["probabilities"]
        assert device.last_optimization is not None
        np.testing.assert_allclose(optimized, base, atol=1e-10)

    def test_hybrid_prefix_split_parity(self, circuit_fuzzer):
        circuit = circuit_fuzzer(2, 3, 6, alphabet="clifford-prefix")
        plain = HybridSimulator(seed=0)
        split = HybridSimulator(seed=0, optimize="auto")
        base = plain.simulate(circuit).probabilities()
        rewritten = split.simulate(circuit).probabilities()
        assert "prefix" in split.last_decision.reason
        np.testing.assert_allclose(rewritten, base, atol=1e-10)


class TestFuzzerDeterminism:
    """The corpus itself must be reproducible for failures to be replayable."""

    def test_same_seed_same_circuit(self, circuit_fuzzer):
        first = circuit_fuzzer(11, 4, 5, alphabet="universal")
        second = circuit_fuzzer(11, 4, 5, alphabet="universal")
        assert first == second

    def test_different_seeds_differ(self, circuit_fuzzer):
        assert circuit_fuzzer(0, 4, 5) != circuit_fuzzer(1, 4, 5)

    def test_unknown_alphabet_rejected(self, circuit_fuzzer):
        with pytest.raises(ValueError, match="alphabet"):
            circuit_fuzzer(0, 3, 3, alphabet="made-up")
