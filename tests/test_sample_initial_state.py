"""``sample(initial_state=...)`` across every backend (satellite contract).

``simulate`` always honored ``initial_state``; ``sample`` historically did
not accept it at all.  The base contract now plumbs it through all six
backends: starting a CNOT ladder from ``|10>`` must yield ``11`` samples on
every backend, and the noisy/statevector trajectory path must start its
trajectories from the requested basis state too.
"""

import numpy as np
import pytest

from repro import (
    CNOT,
    Circuit,
    H,
    HybridSimulator,
    KnowledgeCompilationSimulator,
    LineQubit,
    StabilizerSimulator,
    StateVectorSimulator,
    TensorNetworkSimulator,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.trajectory import TrajectorySimulator

ALL_BACKENDS = [
    StateVectorSimulator,
    DensityMatrixSimulator,
    TensorNetworkSimulator,
    TrajectorySimulator,
    StabilizerSimulator,
    KnowledgeCompilationSimulator,
    HybridSimulator,
]


@pytest.fixture
def cnot_ladder():
    q = LineQubit.range(2)
    return Circuit([CNOT(q[0], q[1])])


class TestSampleInitialState:
    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS, ids=lambda c: c.__name__)
    def test_cnot_from_basis_state_10(self, backend_cls, cnot_ladder):
        samples = backend_cls(seed=0).sample(
            cnot_ladder, 20, seed=3, initial_state=0b10
        )
        assert set(samples.samples) == {(1, 1)}

    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS, ids=lambda c: c.__name__)
    def test_default_initial_state_unchanged(self, backend_cls, cnot_ladder):
        samples = backend_cls(seed=0).sample(cnot_ladder, 20, seed=3)
        assert set(samples.samples) == {(0, 0)}

    def test_statevector_noisy_trajectories_honor_initial_state(self):
        from repro import depolarize

        q = LineQubit.range(2)
        noisy = Circuit([CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.02))
        samples = StateVectorSimulator(seed=0).sample(
            noisy, 200, seed=5, initial_state=0b10
        )
        # The no-jump trajectories dominate: |10> -> |11>.
        assert samples.bitstring_counts().get("11", 0) > 150

    def test_superposition_distribution_matches_simulate(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1])])
        simulator = StateVectorSimulator(seed=1)
        reference = simulator.simulate(circuit, initial_state=0b01).probabilities()
        samples = simulator.sample(circuit, 4000, seed=9, initial_state=0b01)
        empirical = samples.empirical_distribution()
        assert np.max(np.abs(empirical - reference)) < 0.05

    def test_kc_compiled_circuit_rejects_initial_state(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1])])
        simulator = KnowledgeCompilationSimulator(seed=0)
        compiled = simulator.compile_circuit(circuit)
        with pytest.raises(ValueError, match="initial state at compile time"):
            simulator.sample(compiled, 10, seed=0, initial_state=1)
