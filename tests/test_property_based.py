"""Cross-backend property-based tests on randomly generated circuits.

The key invariant of the whole reproduction: for any circuit the pipeline can
express, the knowledge-compilation simulator must agree exactly with the
dense reference simulators — state vectors for ideal circuits, density
matrices for noisy ones — and all backends must produce normalised
distributions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CNOT,
    CZ,
    Circuit,
    H,
    LineQubit,
    Rx,
    Ry,
    Rz,
    S,
    SWAP,
    T,
    X,
    Y,
    Z,
    ZZ,
    amplitude_damp,
    bit_flip,
    depolarize,
    phase_damp,
    phase_flip,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator
from repro.tensornetwork import TensorNetworkSimulator

KC = KnowledgeCompilationSimulator(seed=0)
SV = StateVectorSimulator(seed=0)
DM = DensityMatrixSimulator(seed=0)
TN = TensorNetworkSimulator(seed=0)

SINGLE_QUBIT_GATES = [H, X, Y, Z, S, T, Rx(0.37), Ry(0.91), Rz(1.23)]
TWO_QUBIT_GATES = [CNOT, CZ, SWAP, ZZ(0.7)]
NOISE_FACTORIES = [
    lambda: bit_flip(0.12),
    lambda: phase_flip(0.2),
    lambda: depolarize(0.08),
    lambda: amplitude_damp(0.25),
    lambda: phase_damp(0.3),
]


def random_ideal_circuit(rng: np.random.Generator, num_qubits: int, num_gates: int) -> Circuit:
    qubits = LineQubit.range(num_qubits)
    circuit = Circuit()
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.4:
            gate = TWO_QUBIT_GATES[rng.integers(0, len(TWO_QUBIT_GATES))]
            targets = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(gate(qubits[targets[0]], qubits[targets[1]]))
        else:
            gate = SINGLE_QUBIT_GATES[rng.integers(0, len(SINGLE_QUBIT_GATES))]
            circuit.append(gate(qubits[rng.integers(0, num_qubits)]))
    return circuit


def random_noisy_circuit(rng: np.random.Generator, num_qubits: int, num_gates: int, num_channels: int) -> Circuit:
    circuit = random_ideal_circuit(rng, num_qubits, num_gates)
    qubits = LineQubit.range(num_qubits)
    for _ in range(num_channels):
        factory = NOISE_FACTORIES[rng.integers(0, len(NOISE_FACTORIES))]
        circuit.append(factory().on(qubits[rng.integers(0, num_qubits)]))
    return circuit


class TestIdealCircuitEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_kc_matches_state_vector(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(1, 4))
        circuit = random_ideal_circuit(rng, num_qubits, int(rng.integers(1, 7)))
        kc_state = KC.simulate(circuit).state_vector
        sv_state = SV.simulate(circuit).state_vector
        assert np.allclose(kc_state, sv_state, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_tensor_network_matches_state_vector(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        circuit = random_ideal_circuit(rng, num_qubits, int(rng.integers(1, 6)))
        tn_state = TN.simulate(circuit).state_vector
        sv_state = SV.simulate(circuit).state_vector
        assert np.allclose(tn_state, sv_state, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_state_norm_preserved(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_ideal_circuit(rng, int(rng.integers(1, 5)), int(rng.integers(1, 8)))
        state = SV.simulate(circuit).state_vector
        assert np.linalg.norm(state) == pytest.approx(1.0)


class TestNoisyCircuitEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_kc_matches_density_matrix(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(1, 3))
        circuit = random_noisy_circuit(rng, num_qubits, int(rng.integers(1, 5)), int(rng.integers(1, 3)))
        kc_rho = KC.simulate_density_matrix(circuit).density_matrix
        dm_rho = DM.simulate(circuit).density_matrix
        assert np.allclose(kc_rho, dm_rho, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_density_matrix_is_physical(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_noisy_circuit(rng, int(rng.integers(1, 4)), int(rng.integers(1, 6)), int(rng.integers(1, 4)))
        rho = DM.simulate(circuit).density_matrix
        assert np.trace(rho).real == pytest.approx(1.0)
        eigenvalues = np.linalg.eigvalsh(rho)
        assert eigenvalues.min() > -1e-9
        assert np.allclose(rho, rho.conj().T, atol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_kc_probabilities_normalised(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_noisy_circuit(rng, int(rng.integers(1, 3)), int(rng.integers(1, 4)), 1)
        probabilities = KC.compile_circuit(circuit).probabilities()
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-8)
