"""Cross-backend property-based tests on randomly generated circuits.

The key invariant of the whole reproduction: for any circuit the pipeline can
express, the knowledge-compilation simulator must agree exactly with the
dense reference simulators — state vectors for ideal circuits, density
matrices for noisy ones — and all backends must produce normalised
distributions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CNOT,
    CZ,
    Circuit,
    H,
    LineQubit,
    Rx,
    Ry,
    Rz,
    S,
    SWAP,
    T,
    X,
    Y,
    Z,
    ZZ,
    amplitude_damp,
    bit_flip,
    depolarize,
    phase_damp,
    phase_flip,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator
from repro.tensornetwork import TensorNetworkSimulator

KC = KnowledgeCompilationSimulator(seed=0)
SV = StateVectorSimulator(seed=0)
DM = DensityMatrixSimulator(seed=0)
TN = TensorNetworkSimulator(seed=0)

SINGLE_QUBIT_GATES = [H, X, Y, Z, S, T, Rx(0.37), Ry(0.91), Rz(1.23)]
TWO_QUBIT_GATES = [CNOT, CZ, SWAP, ZZ(0.7)]
NOISE_FACTORIES = [
    lambda: bit_flip(0.12),
    lambda: phase_flip(0.2),
    lambda: depolarize(0.08),
    lambda: amplitude_damp(0.25),
    lambda: phase_damp(0.3),
]


def random_ideal_circuit(rng: np.random.Generator, num_qubits: int, num_gates: int) -> Circuit:
    qubits = LineQubit.range(num_qubits)
    circuit = Circuit()
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.4:
            gate = TWO_QUBIT_GATES[rng.integers(0, len(TWO_QUBIT_GATES))]
            targets = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(gate(qubits[targets[0]], qubits[targets[1]]))
        else:
            gate = SINGLE_QUBIT_GATES[rng.integers(0, len(SINGLE_QUBIT_GATES))]
            circuit.append(gate(qubits[rng.integers(0, num_qubits)]))
    return circuit


def random_noisy_circuit(rng: np.random.Generator, num_qubits: int, num_gates: int, num_channels: int) -> Circuit:
    circuit = random_ideal_circuit(rng, num_qubits, num_gates)
    qubits = LineQubit.range(num_qubits)
    for _ in range(num_channels):
        factory = NOISE_FACTORIES[rng.integers(0, len(NOISE_FACTORIES))]
        circuit.append(factory().on(qubits[rng.integers(0, num_qubits)]))
    return circuit


class TestIdealCircuitEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_kc_matches_state_vector(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(1, 4))
        circuit = random_ideal_circuit(rng, num_qubits, int(rng.integers(1, 7)))
        kc_state = KC.simulate(circuit).state_vector
        sv_state = SV.simulate(circuit).state_vector
        assert np.allclose(kc_state, sv_state, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_tensor_network_matches_state_vector(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        circuit = random_ideal_circuit(rng, num_qubits, int(rng.integers(1, 6)))
        tn_state = TN.simulate(circuit).state_vector
        sv_state = SV.simulate(circuit).state_vector
        assert np.allclose(tn_state, sv_state, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_state_norm_preserved(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_ideal_circuit(rng, int(rng.integers(1, 5)), int(rng.integers(1, 8)))
        state = SV.simulate(circuit).state_vector
        assert np.linalg.norm(state) == pytest.approx(1.0)


class TestNoisyCircuitEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_kc_matches_density_matrix(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(1, 3))
        circuit = random_noisy_circuit(rng, num_qubits, int(rng.integers(1, 5)), int(rng.integers(1, 3)))
        kc_rho = KC.simulate_density_matrix(circuit).density_matrix
        dm_rho = DM.simulate(circuit).density_matrix
        assert np.allclose(kc_rho, dm_rho, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_density_matrix_is_physical(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_noisy_circuit(rng, int(rng.integers(1, 4)), int(rng.integers(1, 6)), int(rng.integers(1, 4)))
        rho = DM.simulate(circuit).density_matrix
        assert np.trace(rho).real == pytest.approx(1.0)
        eigenvalues = np.linalg.eigvalsh(rho)
        assert eigenvalues.min() > -1e-9
        assert np.allclose(rho, rho.conj().T, atol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_kc_probabilities_normalised(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_noisy_circuit(rng, int(rng.integers(1, 3)), int(rng.integers(1, 4)), 1)
        probabilities = KC.compile_circuit(circuit).probabilities()
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-8)


class TestRotationMergeArithmetic:
    """Hypothesis coverage of the fusion pass's angle arithmetic.

    ``try_merge`` claims ``fam(a) . fam(b) == fam(a + b)`` exactly (up to
    global phase) for every rotation family, including the degenerate edges
    the optimizer special-cases: ``a + b == 0`` collapses the pair to the
    droppable identity (``Ry(0)`` etc.), while ``a + b == 2*pi`` lands on
    ``-I`` — numerically an identity up to phase, but *liftable* (it shares
    the generic zero/one mask), so the pass must keep it to preserve the
    shared symbolic/resolved topology key.
    """

    FAMILIES_1Q = (Rx, Ry, Rz)

    @staticmethod
    def _merge_pair(family, a, b, qubits):
        from repro.circuits.passes.rules import try_merge

        return try_merge(family(a)(*qubits), family(b)(*qubits))

    @given(
        family_index=st.integers(min_value=0, max_value=2),
        a=st.floats(min_value=-4 * np.pi, max_value=4 * np.pi, allow_nan=False),
        b=st.floats(min_value=-4 * np.pi, max_value=4 * np.pi, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_merged_angle_is_exact_sum(self, family_index, a, b):
        from repro.circuits.clifford import equal_up_to_global_phase

        family = self.FAMILIES_1Q[family_index]
        qubit = LineQubit.range(1)
        merged = self._merge_pair(family, a, b, qubit)
        from repro.circuits.passes.rules import CANCEL

        if merged is CANCEL:
            product = family(b).unitary(None) @ family(a).unitary(None)
            assert equal_up_to_global_phase(product, np.eye(2))
            return
        assert merged is not None
        assert np.allclose(
            merged.gate.unitary(None),
            family(b).unitary(None) @ family(a).unitary(None),
            atol=1e-12,
        )

    @given(
        family_index=st.integers(min_value=0, max_value=2),
        a=st.floats(min_value=-2 * np.pi, max_value=2 * np.pi, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_inverse_pair_optimizes_to_empty(self, family_index, a):
        from repro.circuits import optimize_circuit

        family = self.FAMILIES_1Q[family_index]
        q = LineQubit.range(1)
        circuit = Circuit([family(a)(q[0]), family(-a)(q[0])])
        optimized = optimize_circuit(circuit).circuit
        assert len(optimized.all_operations()) == 0

    @given(
        a=st.floats(min_value=0.1, max_value=2 * np.pi - 0.1, allow_nan=False),
        b=st.floats(min_value=0.1, max_value=2 * np.pi - 0.1, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_zz_merge_matches_product(self, a, b):
        from repro.circuits.passes.rules import try_merge

        q = LineQubit.range(2)
        merged = try_merge(ZZ(a)(q[0], q[1]), ZZ(b)(q[1], q[0]))
        if merged is None:
            return  # CANCEL path handled by the 1q test; ZZ never returns None here
        from repro.circuits.passes.rules import CANCEL

        if merged is CANCEL:
            product = ZZ(b).unitary(None) @ ZZ(a).unitary(None)
            assert np.allclose(np.abs(product), np.eye(4), atol=1e-12)
            return
        assert np.allclose(
            merged.gate.unitary(None),
            ZZ(b).unitary(None) @ ZZ(a).unitary(None),
            atol=1e-12,
        )

    def test_ry_zero_degenerate_is_dropped(self):
        from repro.circuits import optimize_circuit

        q = LineQubit.range(1)
        optimized = optimize_circuit(Circuit([Ry(0.0)(q[0]), H(q[0])])).circuit
        assert [str(op) for op in optimized.all_operations()] == ["H(q0)"]

    @given(a=st.floats(min_value=0.1, max_value=2 * np.pi - 0.1, allow_nan=False))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_two_pi_wraparound_kept_but_equivalent(self, a):
        # a + (2*pi - a) == 2*pi: the merged rotation is -I up to phase but
        # LIFTABLE, so the optimizer must keep exactly one operation — and
        # the circuit must still be unitarily equivalent to the original.
        from repro.circuits import optimize_circuit
        from repro.circuits.clifford import equal_up_to_global_phase

        q = LineQubit.range(1)
        circuit = Circuit([Rz(a)(q[0]), Rz(2 * np.pi - a)(q[0])])
        optimized = optimize_circuit(circuit).circuit
        assert len(optimized.all_operations()) == 1
        assert equal_up_to_global_phase(
            optimized.unitary(qubit_order=q), circuit.unitary(qubit_order=q)
        )

    @given(
        a=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        b=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_symbolic_numeric_sum_consistency(self, a, b):
        # add_parameter_values on two concrete angles must agree with plain
        # float addition (the fusion pass relies on this equivalence when a
        # chain mixes resolved and literal angles).
        from repro.circuits.parameters import add_parameter_values

        total = add_parameter_values(a, b)
        assert float(total) == pytest.approx(a + b, abs=1e-12)

    def test_symbolic_sum_resolves_like_numeric(self):
        from repro.circuits import ParamResolver, Symbol, optimize_circuit

        q = LineQubit.range(1)
        s, t = Symbol("s"), Symbol("t")
        circuit = Circuit([Rz(s)(q[0]), Rz(t)(q[0])])
        optimized = optimize_circuit(circuit).circuit
        assert len(optimized.all_operations()) == 1
        resolver = ParamResolver({"s": 0.31, "t": 1.27})
        assert np.allclose(
            optimized.resolve_parameters(resolver).unitary(qubit_order=q),
            Rz(0.31 + 1.27).unitary(None),
            atol=1e-12,
        )
