"""Tests for the Circuit and Moment containers."""

import numpy as np
import pytest

from repro.circuits import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    Moment,
    ParamResolver,
    Rx,
    Symbol,
    X,
    Z,
    ZZ,
    depolarize,
    measure,
)
from repro.linalg import expand_operator


class TestMoment:
    def test_disjoint_qubits_enforced(self):
        q = LineQubit.range(2)
        moment = Moment([H(q[0])])
        with pytest.raises(ValueError):
            moment.append(X(q[0]))
        moment.append(X(q[1]))
        assert len(moment) == 2

    def test_can_accept(self):
        q = LineQubit.range(3)
        moment = Moment([CNOT(q[0], q[1])])
        assert moment.can_accept(H(q[2]))
        assert not moment.can_accept(H(q[1]))


class TestCircuitConstruction:
    def test_earliest_packing(self):
        q = LineQubit.range(3)
        circuit = Circuit([H(q[0]), H(q[1]), CNOT(q[0], q[1]), H(q[2])])
        # H(q2) fits into the first moment even though it was appended last.
        assert circuit.depth == 2
        assert len(circuit.moments[0]) == 3

    def test_new_moment_flag(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        circuit.append(H(q[1]), new_moment=True)
        assert circuit.depth == 2

    def test_append_rejects_non_operations(self):
        circuit = Circuit()
        with pytest.raises(TypeError):
            circuit.append(["not an op"])

    def test_add_circuits(self):
        q = LineQubit.range(2)
        combined = Circuit([H(q[0])]) + Circuit([CNOT(q[0], q[1])])
        assert combined.gate_count() == 2

    def test_copy_is_independent(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        duplicate = circuit.copy()
        duplicate.append(H(q[1]))
        assert circuit.gate_count() == 1
        assert duplicate.gate_count() == 2

    def test_equality(self):
        q = LineQubit.range(2)
        assert Circuit([H(q[0])]) == Circuit([H(q[0])])
        assert Circuit([H(q[0])]) != Circuit([H(q[1])])


class TestCircuitIntrospection:
    def test_qubits_and_counts(self, qaoa_like_circuit):
        assert qaoa_like_circuit.num_qubits == 4
        assert qaoa_like_circuit.gate_count() == 11
        assert qaoa_like_circuit.is_parameterized
        assert len(qaoa_like_circuit.parameters) == 2

    def test_measurements_separated(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), measure(q[0], q[1])])
        assert len(circuit.measurement_operations()) == 1
        assert circuit.gate_count() == 1
        assert circuit.gate_count(include_measurements=True) == 2
        stripped = circuit.without_measurements()
        assert not stripped.measurement_operations()

    def test_text_diagram_mentions_gates(self, bell_circuit):
        diagram = bell_circuit.to_text_diagram()
        assert "H" in diagram
        assert "CNOT" in diagram


class TestCircuitTransformations:
    def test_resolve_parameters(self, qaoa_like_circuit, qaoa_resolver):
        resolved = qaoa_like_circuit.resolve_parameters(qaoa_resolver)
        assert not resolved.is_parameterized
        assert resolved.gate_count() == qaoa_like_circuit.gate_count()

    def test_with_noise_inserts_channel_per_qubit_per_gate(self, bell_circuit):
        noisy = bell_circuit.with_noise(lambda: depolarize(0.01))
        # H -> 1 channel, CNOT -> 2 channels.
        assert len(noisy.noise_operations()) == 3
        assert noisy.has_noise
        assert noisy.gate_count() == 2

    def test_with_noise_requires_channel(self, bell_circuit):
        with pytest.raises(TypeError):
            bell_circuit.with_noise(lambda: "not a channel")


class TestCircuitUnitary:
    def test_bell_unitary(self, bell_circuit):
        q = LineQubit.range(2)
        expected = expand_operator(CNOT.unitary(), [0, 1], 2) @ expand_operator(H.unitary(), [0], 2)
        assert np.allclose(bell_circuit.unitary(), expected)

    def test_unitary_of_noisy_circuit_raises(self, noisy_bell_circuit):
        with pytest.raises(ValueError):
            noisy_bell_circuit.unitary()

    def test_unitary_with_resolver(self, qaoa_like_circuit, qaoa_resolver):
        unitary = qaoa_like_circuit.unitary(resolver=qaoa_resolver)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(16), atol=1e-8)

    def test_unitary_respects_qubit_order(self):
        q = LineQubit.range(2)
        circuit = Circuit([X(q[1])])
        forward = circuit.unitary(qubit_order=[q[0], q[1]])
        reversed_order = circuit.unitary(qubit_order=[q[1], q[0]])
        assert np.allclose(forward, np.kron(np.eye(2), X.unitary()))
        assert np.allclose(reversed_order, np.kron(X.unitary(), np.eye(2)))
