"""The typed ``repro.errors`` hierarchy (satellite contract).

Backends used to raise bare ``ValueError``/``RuntimeError``; callers can
now route on failure class while old ``except ValueError`` code keeps
working (every circuit/capability error double-inherits the builtin it
replaced).
"""

import pytest

from repro import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    StabilizerSimulator,
    StateVectorSimulator,
    TensorNetworkSimulator,
    TOFFOLI,
    depolarize,
)
from repro.circuits.noise import AmplitudeDampingChannel
from repro.errors import (
    BackendCapabilityError,
    CompilationError,
    JobCancelledError,
    JobError,
    ReproError,
    UnsupportedCircuitError,
)


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for cls in (
            UnsupportedCircuitError,
            BackendCapabilityError,
            CompilationError,
            JobError,
            JobCancelledError,
        ):
            assert issubclass(cls, ReproError)

    def test_backward_compatible_builtin_bases(self):
        # Old call sites catching ValueError/RuntimeError must keep working.
        assert issubclass(UnsupportedCircuitError, ValueError)
        assert issubclass(BackendCapabilityError, ValueError)
        assert issubclass(CompilationError, RuntimeError)
        assert issubclass(JobCancelledError, JobError)


class TestBackendRaises:
    def test_statevector_rejects_noisy_simulate(self):
        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.1))
        with pytest.raises(UnsupportedCircuitError):
            StateVectorSimulator().simulate(noisy)

    def test_stabilizer_rejects_non_clifford_gate(self):
        q = LineQubit.range(3)
        circuit = Circuit([H(q[0]), TOFFOLI(q[0], q[1], q[2])])
        with pytest.raises(UnsupportedCircuitError, match="Clifford"):
            StabilizerSimulator().simulate(circuit)

    def test_stabilizer_rejects_non_pauli_noise(self):
        q = LineQubit.range(1)
        circuit = Circuit([H(q[0])]).with_noise(lambda: AmplitudeDampingChannel(0.2))
        with pytest.raises(UnsupportedCircuitError, match="Pauli"):
            StabilizerSimulator().sample(circuit, 5, seed=0)

    def test_stabilizer_rejects_noisy_simulate(self):
        q = LineQubit.range(1)
        circuit = Circuit([H(q[0])]).with_noise(lambda: depolarize(0.1))
        with pytest.raises(UnsupportedCircuitError, match="ideal circuits"):
            StabilizerSimulator().simulate(circuit)

    def test_tensornetwork_rejects_noise(self):
        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.1))
        with pytest.raises(UnsupportedCircuitError, match="ideal circuits"):
            TensorNetworkSimulator().sample(noisy, 5, seed=0)

    def test_kc_noisy_state_vector_query(self):
        from repro import KnowledgeCompilationSimulator

        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.1))
        compiled = KnowledgeCompilationSimulator(seed=0).compile_circuit(noisy)
        with pytest.raises(UnsupportedCircuitError, match="noisy"):
            compiled.state_vector()

    def test_errors_still_catchable_as_valueerror(self):
        q = LineQubit.range(3)
        circuit = Circuit([H(q[0]), TOFFOLI(q[0], q[1], q[2])])
        with pytest.raises(ValueError):
            StabilizerSimulator().simulate(circuit)
