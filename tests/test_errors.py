"""The typed ``repro.errors`` hierarchy (satellite contract).

Backends used to raise bare ``ValueError``/``RuntimeError``; callers can
now route on failure class while old ``except ValueError`` code keeps
working (every circuit/capability error double-inherits the builtin it
replaced).
"""

import pytest

from repro import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    StabilizerSimulator,
    StateVectorSimulator,
    TensorNetworkSimulator,
    TOFFOLI,
    depolarize,
)
from repro.circuits.noise import AmplitudeDampingChannel
from repro.errors import (
    BackendCapabilityError,
    CompilationError,
    InvalidRequestError,
    JobCancelledError,
    JobError,
    MissingObservableError,
    ReproError,
    RequestTypeError,
    UnsupportedCircuitError,
)


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for cls in (
            UnsupportedCircuitError,
            BackendCapabilityError,
            CompilationError,
            JobError,
            JobCancelledError,
            InvalidRequestError,
            RequestTypeError,
            MissingObservableError,
        ):
            assert issubclass(cls, ReproError)

    def test_backward_compatible_builtin_bases(self):
        # Old call sites catching ValueError/RuntimeError must keep working.
        assert issubclass(UnsupportedCircuitError, ValueError)
        assert issubclass(BackendCapabilityError, ValueError)
        assert issubclass(CompilationError, RuntimeError)
        assert issubclass(JobCancelledError, JobError)
        # The request-validation errors added for the api boundary.
        assert issubclass(InvalidRequestError, ValueError)
        assert issubclass(RequestTypeError, TypeError)
        assert issubclass(RequestTypeError, InvalidRequestError)
        assert issubclass(MissingObservableError, KeyError)

    def test_missing_observable_message_stays_readable(self):
        # KeyError.__str__ would repr() the message; ours must not.
        error = MissingObservableError("batch did not record 'samples'")
        assert str(error) == "batch did not record 'samples'"


class TestApiRequestValidation:
    def test_run_rejects_non_circuit_with_typed_error(self):
        import repro

        device = repro.device("state_vector")
        with pytest.raises(RequestTypeError):
            device.run(["not a circuit"])
        with pytest.raises(TypeError):  # legacy catch still works
            device.run([42])

    def test_run_rejects_bad_options_with_typed_error(self):
        import repro

        device = repro.device("state_vector")
        circuit = Circuit([H(LineQubit(0))])
        with pytest.raises(InvalidRequestError):
            device.run(circuit, observables=["nonsense"])
        with pytest.raises(ValueError):  # legacy catch still works
            device.run(circuit, on_error="explode")

    def test_batch_result_missing_observable(self):
        import repro

        device = repro.device("state_vector")
        circuit = Circuit([H(LineQubit(0))])
        batch = device.run(circuit, observables=["probabilities"]).result()
        with pytest.raises(MissingObservableError):
            batch.expectations()
        with pytest.raises(KeyError):  # legacy catch still works
            batch.counts()


class TestBackendRaises:
    def test_statevector_rejects_noisy_simulate(self):
        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.1))
        with pytest.raises(UnsupportedCircuitError):
            StateVectorSimulator().simulate(noisy)

    def test_stabilizer_rejects_non_clifford_gate(self):
        q = LineQubit.range(3)
        circuit = Circuit([H(q[0]), TOFFOLI(q[0], q[1], q[2])])
        with pytest.raises(UnsupportedCircuitError, match="Clifford"):
            StabilizerSimulator().simulate(circuit)

    def test_stabilizer_rejects_non_pauli_noise(self):
        q = LineQubit.range(1)
        circuit = Circuit([H(q[0])]).with_noise(lambda: AmplitudeDampingChannel(0.2))
        with pytest.raises(UnsupportedCircuitError, match="Pauli"):
            StabilizerSimulator().sample(circuit, 5, seed=0)

    def test_stabilizer_rejects_noisy_simulate(self):
        q = LineQubit.range(1)
        circuit = Circuit([H(q[0])]).with_noise(lambda: depolarize(0.1))
        with pytest.raises(UnsupportedCircuitError, match="ideal circuits"):
            StabilizerSimulator().simulate(circuit)

    def test_tensornetwork_rejects_noise(self):
        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.1))
        with pytest.raises(UnsupportedCircuitError, match="ideal circuits"):
            TensorNetworkSimulator().sample(noisy, 5, seed=0)

    def test_kc_noisy_state_vector_query(self):
        from repro import KnowledgeCompilationSimulator

        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.1))
        compiled = KnowledgeCompilationSimulator(seed=0).compile_circuit(noisy)
        with pytest.raises(UnsupportedCircuitError, match="noisy"):
            compiled.state_vector()

    def test_errors_still_catchable_as_valueerror(self):
        q = LineQubit.range(3)
        circuit = Circuit([H(q[0]), TOFFOLI(q[0], q[1], q[2])])
        with pytest.raises(ValueError):
            StabilizerSimulator().simulate(circuit)
