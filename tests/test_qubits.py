"""Tests for qubit identifier types."""

import pytest

from repro.circuits import GridQubit, LineQubit, NamedQubit, sorted_qubits


class TestLineQubit:
    def test_equality_and_hash(self):
        assert LineQubit(3) == LineQubit(3)
        assert LineQubit(3) != LineQubit(4)
        assert hash(LineQubit(3)) == hash(LineQubit(3))

    def test_ordering(self):
        assert LineQubit(1) < LineQubit(2)
        assert sorted([LineQubit(5), LineQubit(2)]) == [LineQubit(2), LineQubit(5)]

    def test_range(self):
        qubits = LineQubit.range(4)
        assert len(qubits) == 4
        assert qubits[0].index == 0
        assert qubits[-1].index == 3

    def test_range_with_start_and_stop(self):
        qubits = LineQubit.range(2, 5)
        assert [q.index for q in qubits] == [2, 3, 4]

    def test_str_and_repr(self):
        assert str(LineQubit(7)) == "q7"
        assert "7" in repr(LineQubit(7))


class TestGridQubit:
    def test_rect(self):
        qubits = GridQubit.rect(2, 3)
        assert len(qubits) == 6
        assert qubits[0] == GridQubit(0, 0)
        assert qubits[-1] == GridQubit(1, 2)

    def test_ordering_row_major(self):
        assert GridQubit(0, 1) < GridQubit(1, 0)
        assert GridQubit(1, 0) < GridQubit(1, 1)

    def test_not_equal_to_line_qubit(self):
        assert GridQubit(0, 0) != LineQubit(0)


class TestNamedQubit:
    def test_equality(self):
        assert NamedQubit("ancilla") == NamedQubit("ancilla")
        assert NamedQubit("a") != NamedQubit("b")

    def test_sortable_with_other_kinds(self):
        qubits = [NamedQubit("z"), LineQubit(0), GridQubit(0, 0)]
        assert len(sorted(qubits)) == 3


class TestSortedQubits:
    def test_removes_duplicates(self):
        q = LineQubit(1)
        assert sorted_qubits([q, q, LineQubit(0)]) == [LineQubit(0), LineQubit(1)]

    def test_empty(self):
        assert sorted_qubits([]) == []
