"""Tests for the reprolint static-analysis suite (tools/reprolint).

Per-rule positive/negative fixtures, pragma + baseline-ratchet behaviour,
and a self-check pinning ``src/repro`` to the committed baseline so the
tier-1 suite catches invariant regressions even without the CI job.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from reprolint import ALL_RULES, FileContext, run_paths  # noqa: E402
from reprolint.baseline import (  # noqa: E402
    BaselineError,
    compare_to_baseline,
    load_baseline,
    update_baseline,
)
from reprolint.cli import main as reprolint_main  # noqa: E402
from reprolint.rules import (  # noqa: E402
    AtomicWriteRule,
    BroadExceptRule,
    NoPrintRule,
    PoolSafetyRule,
    RngDisciplineRule,
    TypedErrorsRule,
)


def lint(source, rule, path="src/repro/example.py"):
    """Run one rule over a snippet; returns non-suppressed findings."""
    ctx = FileContext(path, textwrap.dedent(source))
    findings = rule(ctx).run()
    return [f for f in findings if not ctx.suppressed(f)]


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------
class TestRngDiscipline:
    def test_flags_random_module_import(self):
        assert lint("import random\n", RngDisciplineRule)
        assert lint("from random import shuffle\n", RngDisciplineRule)

    def test_flags_legacy_np_random_calls(self):
        findings = lint(
            """
            import numpy as np
            x = np.random.rand(3)
            np.random.seed(0)
            """,
            RngDisciplineRule,
        )
        assert len(findings) == 2

    def test_flags_unseeded_default_rng(self):
        assert lint("import numpy as np\nrng = np.random.default_rng()\n", RngDisciplineRule)

    def test_allows_seeded_default_rng(self):
        assert not lint("import numpy as np\nrng = np.random.default_rng(7)\n", RngDisciplineRule)

    def test_allows_the_entry_point_idiom(self):
        source = """
        import numpy as np

        def run(rng=None):
            rng = rng or np.random.default_rng()
            return rng
        """
        assert not lint(source, RngDisciplineRule)

    def test_flags_wall_clock_and_entropy(self):
        findings = lint(
            """
            import time, uuid
            stamp = time.time()
            job = uuid.uuid4()
            """,
            RngDisciplineRule,
        )
        assert {f.line for f in findings} == {3, 4}

    def test_allows_monotonic_clocks(self):
        assert not lint("import time\nt = time.perf_counter()\n", RngDisciplineRule)


# ----------------------------------------------------------------------
# typed-errors
# ----------------------------------------------------------------------
class TestTypedErrors:
    API = "src/repro/api/device.py"

    def test_flags_builtin_raise_in_api(self):
        assert lint("raise ValueError('bad')\n", TypedErrorsRule, path=self.API)
        assert lint("raise RuntimeError\n", TypedErrorsRule, path=self.API)

    def test_allows_typed_raise_in_api(self):
        source = "from repro.errors import InvalidRequestError\nraise InvalidRequestError('bad')\n"
        assert not lint(source, TypedErrorsRule, path=self.API)

    def test_allows_re_raise(self):
        source = """
        try:
            work()
        except Exception:
            raise
        """
        assert not lint(source, TypedErrorsRule, path=self.API)

    def test_out_of_scope_module_is_exempt(self):
        assert not lint("raise ValueError('x')\n", TypedErrorsRule, path="src/repro/cnf/formula.py")


# ----------------------------------------------------------------------
# broad-except
# ----------------------------------------------------------------------
class TestBroadExcept:
    def test_flags_bare_except(self):
        source = "try:\n    x()\nexcept:\n    pass\n"
        assert lint(source, BroadExceptRule)

    def test_flags_swallowing_broad_except(self):
        source = "try:\n    x()\nexcept Exception:\n    pass\n"
        assert lint(source, BroadExceptRule)

    def test_allows_broad_except_that_reraises(self):
        source = """
        try:
            x()
        except Exception:
            cleanup()
            raise
        """
        assert not lint(source, BroadExceptRule)

    def test_allows_broad_except_converted_to_failure_record(self):
        source = """
        try:
            x()
        except Exception as error:
            failures.append(ItemFailure((0,), error, 1))
        """
        assert not lint(source, BroadExceptRule)

    def test_allows_narrow_except(self):
        source = "try:\n    x()\nexcept (OSError, ValueError):\n    pass\n"
        assert not lint(source, BroadExceptRule)


# ----------------------------------------------------------------------
# pool-safety
# ----------------------------------------------------------------------
class TestPoolSafety:
    def test_flags_lambda_submitted_to_executor(self):
        source = "future = pool.submit(lambda: 1)\n"
        assert lint(source, PoolSafetyRule)

    def test_flags_nested_function_in_task_tuple(self):
        source = """
        def build():
            def worker(payload):
                return payload
            return [(worker, {"n": 1})]
        """
        assert lint(source, PoolSafetyRule)

    def test_allows_module_level_worker(self):
        source = """
        def worker(payload):
            return payload

        def build():
            return [(worker, {"n": 1})]
        """
        assert not lint(source, PoolSafetyRule)

    def test_flags_global_mutation_in_worker(self):
        source = """
        CACHE = {}

        def worker(payload):
            CACHE[payload["k"]] = payload
            return payload

        TASKS = [(worker, {"k": 1})]
        """
        assert lint(source, PoolSafetyRule)

    def test_flags_live_backend_in_payload(self):
        source = """
        def worker(payload):
            return payload

        def build(self):
            sim = create_backend("state_vector")
            return [(worker, {"sim": sim})]
        """
        assert lint(source, PoolSafetyRule)

    def test_method_names_do_not_shadow_closures(self):
        # Regression: Tableau has properties named x/z; local tuples like
        # `x, z = ...` must not look like task tuples of nested functions.
        source = """
        class Tableau:
            @property
            def x(self):
                return self._x

            def h(self, a):
                x, z = self.x[:, a], self._z[:, a]
                return x ^ z
        """
        assert not lint(source, PoolSafetyRule)


# ----------------------------------------------------------------------
# atomic-write
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_flags_raw_write_mode_open(self):
        assert lint("open('out.json', 'w').write('x')\n", AtomicWriteRule)
        assert lint("handle = open(path, mode='wb')\n", AtomicWriteRule)

    def test_allows_reads(self):
        assert not lint("data = open('in.json').read()\n", AtomicWriteRule)
        assert not lint("data = open('in.json', 'rb').read()\n", AtomicWriteRule)

    def test_flags_os_write_and_path_write_text(self):
        assert lint("os.write(fd, b'x')\n", AtomicWriteRule)
        assert lint("path.write_text('x')\n", AtomicWriteRule)

    def test_audited_helpers_are_exempt(self):
        source = """
        def atomic_write_bytes(path, data):
            handle = open(path + '.tmp', 'wb')
        """
        assert not lint(source, AtomicWriteRule, path="src/repro/atomicio.py")
        wal = """
        class JobJournal:
            def checkpoint_row(self, index, row):
                os.write(self._wal_fd, b'x')
        """
        assert not lint(wal, AtomicWriteRule, path="src/repro/api/journal.py")

    def test_unaudited_code_in_audited_file_is_still_flagged(self):
        source = """
        class JobJournal:
            def rogue(self):
                open('manifest.pkl', 'wb')
        """
        assert lint(source, AtomicWriteRule, path="src/repro/api/journal.py")


# ----------------------------------------------------------------------
# no-print
# ----------------------------------------------------------------------
class TestNoPrint:
    def test_flags_print(self):
        assert lint("print('hi')\n", NoPrintRule)

    def test_ignores_attribute_named_print(self):
        assert not lint("logger.print('hi')\n", NoPrintRule)


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_line_pragma_suppresses_only_its_line(self):
        source = (
            "print('a')  # reprolint: disable=no-print -- CLI banner\n"
            "print('b')\n"
        )
        findings = lint(source, NoPrintRule)
        assert [f.line for f in findings] == [2]

    def test_file_pragma_suppresses_whole_file(self):
        source = "# reprolint: disable-file=no-print\nprint('a')\nprint('b')\n"
        assert not lint(source, NoPrintRule)

    def test_pragma_names_specific_rule(self):
        source = "print('a')  # reprolint: disable=broad-except -- wrong rule\n"
        assert lint(source, NoPrintRule)

    def test_suppressed_findings_are_counted(self):
        ctx = FileContext(
            "src/repro/example.py",
            "print('a')  # reprolint: disable=no-print -- banner\n",
        )
        findings = NoPrintRule(ctx).run()
        assert len(findings) == 1 and ctx.suppressed(findings[0])


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
class TestBaselineRatchet:
    def write_baseline(self, tmp_path, rules):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "rules": rules}))
        return str(path)

    def test_within_baseline_passes(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("print('a')\nprint('b')\n")
        result = run_paths([str(module)], [NoPrintRule])
        baseline = {
            "no-print": {result.findings[0].path: {"count": 2, "justification": "CLI"}}
        }
        new, _ = compare_to_baseline(
            result.findings, load_baseline(self.write_baseline(tmp_path, baseline))
        )
        assert not new

    def test_count_above_allowance_fails(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("print('a')\nprint('b')\nprint('c')\n")
        result = run_paths([str(module)], [NoPrintRule])
        baseline = {
            "no-print": {result.findings[0].path: {"count": 2, "justification": "CLI"}}
        }
        new, _ = compare_to_baseline(
            result.findings, load_baseline(self.write_baseline(tmp_path, baseline))
        )
        assert [f.line for f in new] == [3]

    def test_unbaselined_finding_fails(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("print('a')\n")
        result = run_paths([str(module)], [NoPrintRule])
        new, _ = compare_to_baseline(result.findings, {})
        assert len(new) == 1

    def test_improvement_is_reported_not_failed(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("x = 1\n")
        result = run_paths([str(module)], [NoPrintRule])
        baseline = {"no-print": {"old.py": {"count": 3, "justification": "CLI"}}}
        new, improvements = compare_to_baseline(
            result.findings, load_baseline(self.write_baseline(tmp_path, baseline))
        )
        assert not new and len(improvements) == 1

    def test_baseline_requires_justification(self, tmp_path):
        path = self.write_baseline(
            tmp_path, {"no-print": {"mod.py": {"count": 1, "justification": "  "}}}
        )
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_typed_errors_cannot_be_baselined_under_api(self, tmp_path):
        path = self.write_baseline(
            tmp_path,
            {"typed-errors": {"src/repro/api/device.py": {"count": 1, "justification": "no"}}},
        )
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_update_baseline_keeps_justifications(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("print('a')\n")
        result = run_paths([str(module)], [NoPrintRule])
        path = tmp_path / "baseline.json"
        previous = {
            "no-print": {result.findings[0].path: {"count": 5, "justification": "CLI banner"}}
        }
        rules = update_baseline(str(path), result.findings, previous)
        entry = rules["no-print"][result.findings[0].path]
        assert entry == {"count": 1, "justification": "CLI banner"}
        # The rewritten file round-trips through the validator.
        assert load_baseline(str(path))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("print('x')\n")
        assert reprolint_main([str(clean)]) == 0
        assert reprolint_main([str(dirty)]) == 1
        capsys.readouterr()

    def test_bad_baseline_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        bad = tmp_path / "baseline.json"
        bad.write_text("{}")
        assert reprolint_main([str(target), "--baseline", str(bad)]) == 2
        capsys.readouterr()

    def test_report_artifact(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("print('x')\n")
        report = tmp_path / "report.json"
        reprolint_main([str(dirty), "--report", str(report)])
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["findings"] and payload["new_findings"]
        assert {rule["id"] for rule in payload["rules"]} == {
            rule.rule_id for rule in ALL_RULES
        }

    def test_module_entry_point_from_repo_root(self):
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        for rule in ALL_RULES:
            assert rule.rule_id in proc.stdout

    def test_module_entry_point_with_tools_on_pythonpath(self):
        # Regression: PYTHONPATH entries are absolutized at startup, which
        # used to defeat the root shim's "insert tools/ first" guard and
        # recurse the shim into itself.  This is the CI invocation form.
        env = dict(os.environ, PYTHONPATH="tools" + os.pathsep + "src")
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr


# ----------------------------------------------------------------------
# the tree itself
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_src_repro_is_clean_modulo_baseline(self):
        """The committed tree must pass its own linter (the CI ratchet)."""
        result = run_paths([os.path.join(REPO_ROOT, "src", "repro")], ALL_RULES)
        assert not result.errors, result.errors
        baseline_path = os.path.join(REPO_ROOT, "tools", "reprolint_baseline.json")
        baseline = load_baseline(baseline_path)
        # run_paths saw absolute paths; the committed baseline is repo-relative.
        normalized = [
            f.__class__(
                os.path.relpath(f.path, REPO_ROOT).replace(os.sep, "/"),
                f.line,
                f.rule,
                f.message,
            )
            for f in result.findings
        ]
        new, _ = compare_to_baseline(normalized, baseline)
        assert not new, "\n".join(f.render() for f in new)

    def test_every_rule_earns_its_place(self):
        """Each rule has >= 1 justified baseline entry or proved fixable.

        The baseline documents the rules that still carry grandfathered
        findings; the remaining rules must flag nothing on the tree (their
        real findings were fixed in this PR) while their fixtures above
        prove they do fire.
        """
        baseline = load_baseline(
            os.path.join(REPO_ROOT, "tools", "reprolint_baseline.json")
        )
        assert len(ALL_RULES) >= 6
        for rule_id in baseline:
            assert rule_id in {rule.rule_id for rule in ALL_RULES}

    def test_api_package_has_zero_typed_error_findings(self):
        api = os.path.join(REPO_ROOT, "src", "repro", "api")
        result = run_paths([api], [TypedErrorsRule])
        offenders = [f for f in result.findings]
        assert not offenders, "\n".join(f.render() for f in offenders)


# ----------------------------------------------------------------------
# typing ladder (runs only where mypy is installed, e.g. the CI job)
# ----------------------------------------------------------------------
class TestTypingLadder:
    STRICT_MODULES = [
        "src/repro/errors.py",
        "src/repro/api/capabilities.py",
        "src/repro/api/faults.py",
        "src/repro/api/registry.py",
    ]

    def test_mypy_config_names_the_contract_core(self):
        with open(os.path.join(REPO_ROOT, "mypy.ini")) as handle:
            config = handle.read()
        for module in ("repro.errors", "repro.api.capabilities", "repro.api.faults", "repro.api.registry"):
            assert module in config

    def test_strict_core_passes_mypy(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"]
            + self.STRICT_MODULES,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
