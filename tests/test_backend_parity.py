"""Cross-backend parity harness.

Asserts that every backend agrees on small circuits where the dense
density-matrix simulator is exact ground truth:

* deterministic backends (state-vector, tensor-network, knowledge
  compilation) match the density matrix exactly on ideal circuits;
* trajectory-averaged observables (density matrix, probabilities, sampling
  histograms) converge to the dense density-matrix result on noisy circuits
  within statistical tolerance.
"""

import numpy as np
import pytest

from repro.circuits import CNOT, Circuit, H, LineQubit, Ry, T, X, amplitude_damp, depolarize, phase_damp
from repro.circuits.noise_model import NoiseModel
from repro.densitymatrix import DensityMatrixSimulator
from repro.sampling import total_variation_distance
from repro.simulator.hybrid import HybridSimulator, select_backend
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StateVectorSimulator
from repro.tensornetwork import TensorNetworkSimulator
from repro.trajectory import TrajectorySimulator
from repro.variational import QAOACircuit, random_regular_maxcut


def _noisy_qaoa(num_qubits: int, probability: float = 0.02, seed: int = 5) -> Circuit:
    ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=1)
    circuit = ansatz.circuit.resolve_parameters(ansatz.resolver([0.6, 0.4]))
    return circuit.with_noise(lambda: depolarize(probability))


def _damped_circuit() -> Circuit:
    """A circuit exercising non-mixture (general Kraus) channels."""
    q = LineQubit.range(2)
    circuit = Circuit([H(q[0]), Ry(0.7)(q[1])])
    circuit.append(amplitude_damp(0.2).on(q[0]))
    circuit.append(CNOT(q[0], q[1]))
    circuit.append(phase_damp(0.3).on(q[1]))
    return circuit


class TestIdealParity:
    """Every backend reproduces the same pure state on ideal circuits."""

    def test_all_backends_agree_on_ideal_circuit(self, qaoa_like_circuit, qaoa_resolver):
        dense = DensityMatrixSimulator().simulate(qaoa_like_circuit, qaoa_resolver)
        rho = dense.density_matrix
        state = StateVectorSimulator().simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        assert np.allclose(np.outer(state, state.conj()), rho, atol=1e-9)
        tn_state = TensorNetworkSimulator().simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        assert np.allclose(np.outer(tn_state, tn_state.conj()), rho, atol=1e-9)
        kc_rho = (
            KnowledgeCompilationSimulator(seed=1)
            .simulate_density_matrix(qaoa_like_circuit, qaoa_resolver)
            .density_matrix
        )
        assert np.allclose(kc_rho, rho, atol=1e-9)
        trajectory_rho = TrajectorySimulator(seed=1).simulate(
            qaoa_like_circuit, qaoa_resolver, num_trajectories=2
        ).density_matrix
        assert np.allclose(trajectory_rho, rho, atol=1e-9)

    def test_initial_state_honored_by_every_backend(self, bell_circuit):
        # |10> input: the Bell circuit maps it to (|10> - |11>)/sqrt(2) up to phase.
        initial = 2
        rho = DensityMatrixSimulator().simulate(bell_circuit, initial_state=initial).density_matrix
        sv = StateVectorSimulator().simulate(bell_circuit, initial_state=initial).state_vector
        assert np.allclose(np.outer(sv, sv.conj()), rho, atol=1e-9)
        tn = TensorNetworkSimulator().simulate(bell_circuit, initial_state=initial).state_vector
        assert np.allclose(np.outer(tn, tn.conj()), rho, atol=1e-9)
        kc = (
            KnowledgeCompilationSimulator(seed=1)
            .simulate(bell_circuit, initial_state=initial)
            .state_vector
        )
        assert np.allclose(np.outer(kc, kc.conj()), rho, atol=1e-9)
        trajectory = TrajectorySimulator(seed=1).simulate(
            bell_circuit, initial_state=initial, num_trajectories=2
        ).density_matrix
        assert np.allclose(trajectory, rho, atol=1e-9)


class TestStabilizerParity:
    """The tableau backend agrees with dense ground truth on Clifford circuits."""

    def test_stabilizer_matches_dense_on_bell(self, bell_circuit):
        rho = DensityMatrixSimulator().simulate(bell_circuit).density_matrix
        result = StabilizerSimulator().simulate(bell_circuit)
        np.testing.assert_allclose(result.probabilities(), np.real(np.diag(rho)), atol=1e-10)
        state = result.state_vector
        np.testing.assert_allclose(np.outer(state, state.conj()), rho, atol=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stabilizer_matches_dense_on_fuzzed_clifford(self, circuit_fuzzer, seed):
        circuit = circuit_fuzzer(seed, 4, 6, alphabet="clifford")
        dense = StateVectorSimulator().simulate(circuit)
        tableau = StabilizerSimulator().simulate(circuit)
        np.testing.assert_allclose(
            tableau.probabilities(), dense.probabilities(), atol=1e-10
        )

    def test_stabilizer_sampling_histogram_converges(self, bell_circuit):
        exact = StateVectorSimulator().simulate(bell_circuit).probabilities()
        samples = StabilizerSimulator(seed=31).sample(bell_circuit, 4000)
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.05


class TestHybridDispatch:
    """Routing decisions are explicit and the hybrid matches whatever it routes to."""

    def test_clifford_routes_to_tableau(self, bell_circuit):
        decision = select_backend(bell_circuit)
        assert decision.backend == "stabilizer"
        assert decision.reason == "clifford"

    def test_t_gate_routes_to_fallback(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), T(q[0]), CNOT(q[0], q[1])])
        decision = select_backend(circuit)
        assert decision.backend == "state_vector"
        assert "T" in decision.reason

    def test_pauli_noise_routes_sampling_only(self, noisy_bell_circuit):
        assert select_backend(noisy_bell_circuit, sampling=True).backend == "stabilizer"
        assert select_backend(noisy_bell_circuit, sampling=False).backend == "state_vector"

    def test_non_pauli_noise_falls_back(self):
        q = LineQubit(0)
        circuit = Circuit([H(q)])
        circuit.append(amplitude_damp(0.1).on(q))
        assert select_backend(circuit).backend == "state_vector"

    def test_hybrid_matches_dense_on_mixed_suite(self, bell_circuit, qaoa_like_circuit, qaoa_resolver):
        simulator = HybridSimulator(seed=0)
        clifford_probs = simulator.simulate(bell_circuit).probabilities()
        assert simulator.last_decision.backend == "stabilizer"
        exact = DensityMatrixSimulator().simulate(bell_circuit).probabilities()
        np.testing.assert_allclose(clifford_probs, exact, atol=1e-10)

        generic_probs = simulator.simulate(qaoa_like_circuit, qaoa_resolver).probabilities()
        assert simulator.last_decision.backend == "state_vector"
        exact = DensityMatrixSimulator().simulate(qaoa_like_circuit, qaoa_resolver).probabilities()
        np.testing.assert_allclose(generic_probs, exact, atol=1e-9)

    def test_hybrid_resolver_dependent_routing(self, qaoa_like_circuit):
        """The same symbolic ansatz routes per binding: pi/2 grid vs generic."""
        from repro.circuits import ParamResolver

        simulator = HybridSimulator(seed=0)
        clifford_binding = ParamResolver({"gamma": np.pi / 4, "beta": np.pi / 4})
        simulator.sample(qaoa_like_circuit, 8, resolver=clifford_binding, seed=0)
        assert simulator.last_decision.backend == "stabilizer"
        generic_binding = ParamResolver({"gamma": 0.55, "beta": 0.35})
        simulator.sample(qaoa_like_circuit, 8, resolver=generic_binding, seed=0)
        assert simulator.last_decision.backend == "state_vector"

    def test_hybrid_noisy_simulate_uses_mixed_state_fallback(self, noisy_bell_circuit):
        """simulate() on a noisy circuit must land on a backend that can run it."""
        simulator = HybridSimulator(seed=0)
        result = simulator.simulate(noisy_bell_circuit)
        assert simulator.last_decision.backend == "density_matrix"
        exact = DensityMatrixSimulator().simulate(noisy_bell_circuit).density_matrix
        np.testing.assert_allclose(result.density_matrix, exact, atol=1e-10)

    def test_hybrid_noisy_sampling_matches_density_matrix(self, noisy_bell_circuit):
        simulator = HybridSimulator(seed=0)
        exact = DensityMatrixSimulator().simulate(noisy_bell_circuit).probabilities()
        samples = simulator.sample(noisy_bell_circuit, 4000, seed=37)
        assert simulator.last_decision.backend == "stabilizer"
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.05


class TestNoisyTrajectoryParity:
    """Trajectory averages converge to the dense density-matrix ground truth."""

    @pytest.mark.parametrize("num_qubits", [3, 4])
    def test_density_matrix_converges_on_noisy_qaoa(self, num_qubits):
        circuit = _noisy_qaoa(num_qubits)
        exact = DensityMatrixSimulator().simulate(circuit).density_matrix
        estimate = TrajectorySimulator(seed=11).simulate(
            circuit, num_trajectories=4000
        ).density_matrix
        assert np.abs(estimate - exact).max() < 0.03
        assert np.trace(estimate).real == pytest.approx(1.0, abs=1e-9)

    def test_general_kraus_channels_converge(self):
        circuit = _damped_circuit()
        exact = DensityMatrixSimulator().simulate(circuit).probabilities()
        estimate = TrajectorySimulator(seed=3).estimate_probabilities(
            circuit, num_trajectories=6000
        )
        assert total_variation_distance(exact, estimate) < 0.03

    def test_sampling_distribution_matches_density_matrix(self):
        circuit = _noisy_qaoa(4)
        exact = DensityMatrixSimulator().simulate(circuit).probabilities()
        exact = exact / exact.sum()
        samples = TrajectorySimulator(seed=23).sample(circuit, 4000)
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.06

    def test_capped_trajectory_sampling_stays_unbiased(self):
        circuit = _noisy_qaoa(3)
        exact = DensityMatrixSimulator().simulate(circuit).probabilities()
        exact = exact / exact.sum()
        samples = TrajectorySimulator(seed=29).sample(circuit, 4000, num_trajectories=200)
        assert total_variation_distance(exact, samples.empirical_distribution()) < 0.08

    def test_matches_statevector_trajectory_method(self):
        """The batched unravelling agrees with the seed's per-run trajectory method."""
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(amplitude_damp(0.4).on(q))
        batched = TrajectorySimulator(seed=7).estimate_probabilities(
            circuit, num_trajectories=4000
        )
        looped = StateVectorSimulator(seed=7).sample(circuit, 4000).empirical_distribution()
        assert total_variation_distance(batched, looped) < 0.05

    def test_noise_model_circuit_parity(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1])])
        noisy = NoiseModel.depolarizing(0.01, 0.05).apply(circuit)
        exact = DensityMatrixSimulator().simulate(noisy).density_matrix
        estimate = TrajectorySimulator(seed=17).simulate(
            noisy, num_trajectories=4000
        ).density_matrix
        assert np.abs(estimate - exact).max() < 0.03

    def test_chunked_batches_match_single_batch(self):
        """max_batch_size chunking must not change seeded results' statistics."""
        circuit = _noisy_qaoa(3)
        small = TrajectorySimulator(seed=41, max_batch_size=16).estimate_probabilities(
            circuit, num_trajectories=512
        )
        large = TrajectorySimulator(seed=41, max_batch_size=512).estimate_probabilities(
            circuit, num_trajectories=512
        )
        assert total_variation_distance(small, large) < 0.08
