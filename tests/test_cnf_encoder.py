"""Tests for the Bayesian-network -> weighted CNF encoder."""

import itertools

import numpy as np
import pytest

from repro.bayesnet import circuit_to_bayesnet
from repro.circuits import CNOT, Circuit, H, LineQubit, ParamResolver, Rx, Symbol, X, ZZ, depolarize, phase_damp
from repro.cnf import CNF, encode_bayesnet
from repro.cnf.encoder import bits_for_cardinality


def brute_force_wmc(encoding, evidence, resolver=None):
    """Exhaustive weighted model count over the *unsimplified* encoding.

    ``evidence`` maps node names to values; elided (unobserved) nodes are
    summed over.  This is the ground truth the compiled pipeline must match.
    """
    cnf = encoding.cnf
    weights = encoding.weights(resolver)
    total = 0.0 + 0j
    variables = sorted(set(range(1, cnf.num_vars + 1)))
    evidence_literals = {}
    for node, value in evidence.items():
        for literal in encoding.value_literals(node, value):
            evidence_literals[abs(literal)] = literal > 0
    for assignment_bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, assignment_bits))
        if any(assignment[var] != val for var, val in evidence_literals.items()):
            continue
        if not cnf.is_satisfied_by(assignment):
            continue
        weight = 1.0 + 0j
        for variable, value in weights.items():
            if assignment.get(variable, False):
                weight *= value
        total += weight
    return total


class TestEncodingBasics:
    def test_bits_for_cardinality(self):
        assert bits_for_cardinality(2) == 1
        assert bits_for_cardinality(3) == 2
        assert bits_for_cardinality(4) == 2
        with pytest.raises(ValueError):
            bits_for_cardinality(1)

    def test_binary_nodes_use_single_variable(self, bell_circuit):
        encoding = encode_bayesnet(circuit_to_bayesnet(bell_circuit))
        for name in ("q0m0", "q0m1", "q1m1"):
            assert len(encoding.bits_of(name)) == 1

    def test_depolarizing_selector_uses_two_bits(self, noisy_bell_circuit):
        encoding = encode_bayesnet(circuit_to_bayesnet(noisy_bell_circuit))
        network = encoding.network
        for name in network.noise_node_names:
            assert len(encoding.bits_of(name)) == 2

    def test_value_literals(self, bell_circuit):
        encoding = encode_bayesnet(circuit_to_bayesnet(bell_circuit))
        bit = encoding.bits_of("q0m1")[0]
        assert encoding.value_literals("q0m1", 0) == [-bit]
        assert encoding.value_literals("q0m1", 1) == [bit]
        with pytest.raises(ValueError):
            encoding.value_literals("q0m1", 2)

    def test_weight_variables_created_for_hadamard(self, bell_circuit):
        encoding = encode_bayesnet(circuit_to_bayesnet(bell_circuit), simplify=False)
        # The Hadamard CAT has four weighted entries; the CNOT is fully deterministic.
        hadamard_weights = [
            ref for ref in encoding.weight_refs.values() if ref.node_name == "q0m1"
        ]
        assert len(hadamard_weights) == 4
        cnot_weights = [ref for ref in encoding.weight_refs.values() if ref.node_name == "q1m1"]
        assert cnot_weights == []

    def test_weights_lookup_matches_tables(self, bell_circuit):
        encoding = encode_bayesnet(circuit_to_bayesnet(bell_circuit))
        weights = encoding.weights()
        values = sorted(np.round(np.real(list(weights.values())), 6))
        assert values[0] == pytest.approx(-1 / np.sqrt(2))
        assert values[-1] == pytest.approx(1 / np.sqrt(2))

    def test_simplification_forces_initial_states(self, bell_circuit):
        encoding = encode_bayesnet(circuit_to_bayesnet(bell_circuit), simplify=True)
        initial_bit = encoding.bits_of("q0m0")[0]
        assert encoding.forced_value(initial_bit) is False  # initial state |0>

    def test_stats_reported(self, bell_circuit):
        encoding = encode_bayesnet(circuit_to_bayesnet(bell_circuit))
        stats = encoding.stats()
        assert stats["weight_variables"] == len(encoding.weight_refs)
        assert stats["clauses"] == encoding.cnf.num_clauses


class TestEncodingSemantics:
    def test_wmc_equals_amplitude_bell(self, bell_circuit):
        network = circuit_to_bayesnet(bell_circuit)
        encoding = encode_bayesnet(network, simplify=False)
        amplitude = brute_force_wmc(encoding, {"q0m1": 1, "q1m1": 1})
        assert amplitude == pytest.approx(1 / np.sqrt(2))
        amplitude = brute_force_wmc(encoding, {"q0m1": 0, "q1m1": 1})
        assert amplitude == pytest.approx(0.0)

    def test_wmc_sums_over_internal_states(self):
        q = LineQubit(0)
        circuit = Circuit([H(q), H(q)])  # H H |0> = |0>, via interference of two paths
        network = circuit_to_bayesnet(circuit)
        encoding = encode_bayesnet(network, simplify=False)
        assert brute_force_wmc(encoding, {"q0m2": 0}) == pytest.approx(1.0)
        assert brute_force_wmc(encoding, {"q0m2": 1}) == pytest.approx(0.0, abs=1e-12)

    def test_wmc_with_noise_branch_evidence(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        circuit.append(phase_damp(0.36).on(q[0]))
        circuit.append(CNOT(q[0], q[1]))
        network = circuit_to_bayesnet(circuit)
        encoding = encode_bayesnet(network, simplify=False)
        # Branch 0 (no damping event): amplitudes 1/sqrt(2) and 0.8/sqrt(2) (Table 5).
        assert brute_force_wmc(encoding, {"q0m2rv": 0, "q0m2": 0, "q1m1": 0}) == pytest.approx(
            1 / np.sqrt(2)
        )
        assert brute_force_wmc(encoding, {"q0m2rv": 0, "q0m2": 1, "q1m1": 1}) == pytest.approx(
            0.8 / np.sqrt(2)
        )
        # Branch 1 (damping event): magnitude 0.6/sqrt(2) on |11>.
        branch_one = brute_force_wmc(encoding, {"q0m2rv": 1, "q0m2": 1, "q1m1": 1})
        assert abs(branch_one) == pytest.approx(0.6 / np.sqrt(2))

    def test_parameterized_weights_rebind(self):
        q = LineQubit(0)
        theta = Symbol("theta")
        circuit = Circuit([Rx(theta)(q)])
        network = circuit_to_bayesnet(circuit)
        encoding = encode_bayesnet(network, simplify=False)
        for value in (0.3, 1.2):
            resolver = ParamResolver({"theta": value})
            amplitude = brute_force_wmc(encoding, {"q0m1": 0}, resolver)
            assert amplitude == pytest.approx(np.cos(value / 2))

    def test_constant_factor_accounts_for_forced_weights(self):
        """A deterministic circuit whose only amplitude lives in a forced weight variable.

        Rz on |0> leaves the state in |0> up to the phase exp(-i theta / 2);
        unit resolution forces the corresponding weight variable true, and
        the encoding must surface that phase through ``constant_factor``.
        """
        from repro.circuits import Rz

        q = LineQubit(0)
        circuit = Circuit([Rz(0.5)(q)])
        network = circuit_to_bayesnet(circuit)
        simplified = encode_bayesnet(network, simplify=True)
        forced_weights = [
            literal for literal in simplified.forced_literals
            if literal > 0 and literal in simplified.weight_refs
        ]
        assert forced_weights, "the Rz phase weight should be forced true"
        assert simplified.constant_factor() == pytest.approx(np.exp(-0.25j))

    def test_unsimplified_encoding_has_no_forced_literals(self, bell_circuit):
        encoding = encode_bayesnet(circuit_to_bayesnet(bell_circuit), simplify=False)
        assert encoding.forced_literals == set()
        assert encoding.constant_factor() == pytest.approx(1.0)
