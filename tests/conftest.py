"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.circuits import CNOT, Circuit, H, LineQubit, ParamResolver, Rx, Symbol, ZZ, depolarize
from repro.circuits import gates as _gates
from repro.circuits.noise import (
    AsymmetricDepolarizingChannel,
    bit_flip,
    phase_flip,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator


@pytest.fixture
def rng():
    return np.random.default_rng(20210419)


# ---------------------------------------------------------------------------
# Seeded random-circuit generator for cross-backend differential fuzzing.
#
# Registered as the ``circuit_fuzzer`` fixture so every present and future
# backend can be fuzzed against the same corpus: a new backend only needs a
# test that draws circuits from the fixture and compares itself to any
# existing backend (see tests/test_differential_fuzz.py).
# ---------------------------------------------------------------------------

#: Gate alphabets by name.  "clifford" draws only stabilizer-simulable gates
#: (including rotation-family gates at k*pi/2 angles, exercising semantic
#: Clifford recognition); "clifford+t" adds the T/TDG non-Clifford phases;
#: "universal" adds generic-angle rotations and two-qubit couplings;
#: "pauli-noise" is the Clifford alphabet plus random Pauli-mixture channels.
#:
#: The rewrite-targeting alphabets stress the optimizer pass pipeline
#: (``repro.circuits.passes``): "rotation-chains" emits runs of same-family
#: rotations on shared qubits (merge/cancel fodder for the fusion pass),
#: "commuting-blocks" interleaves diagonal ZZ/CZ/CPhase/Rz blocks with
#: CNOTs and T/TDG pairs separated by commuting gates (commutation-pass
#: fodder), "clifford-prefix" opens with Clifford layers before a dense
#: generic-rotation tail (prefix-extraction fodder), and "spectator"
#: measures only a subset of qubits while gating the rest (light-cone
#: fodder; Clifford gates only, so every backend including the stabilizer
#: can check parity over the measured qubits).
FUZZ_ALPHABETS = ("clifford", "clifford+t", "universal", "pauli-noise")
REWRITE_ALPHABETS = ("rotation-chains", "commuting-blocks", "clifford-prefix", "spectator")

_CLIFFORD_1Q = (
    lambda rng: _gates.H,
    lambda rng: _gates.S,
    lambda rng: _gates.SDG,
    lambda rng: _gates.X,
    lambda rng: _gates.Y,
    lambda rng: _gates.Z,
    lambda rng: _gates.Rz(float(rng.integers(0, 4)) * np.pi / 2),
    lambda rng: _gates.Rx(float(rng.integers(0, 4)) * np.pi / 2),
    lambda rng: _gates.Ry(float(rng.integers(0, 4)) * np.pi / 2),
)
_CLIFFORD_2Q = (
    lambda rng: _gates.CNOT,
    lambda rng: _gates.CZ,
    lambda rng: _gates.SWAP,
    lambda rng: _gates.ISWAP,
    lambda rng: _gates.ZZ(float(rng.integers(0, 4)) * np.pi / 2),
)
_T_FAMILY = (lambda rng: _gates.T, lambda rng: _gates.TDG)
_UNIVERSAL_1Q = _CLIFFORD_1Q + _T_FAMILY + (
    lambda rng: _gates.Rx(float(rng.uniform(0.1, 2 * np.pi))),
    lambda rng: _gates.Ry(float(rng.uniform(0.1, 2 * np.pi))),
    lambda rng: _gates.Rz(float(rng.uniform(0.1, 2 * np.pi))),
)
_UNIVERSAL_2Q = _CLIFFORD_2Q + (
    lambda rng: _gates.CPhase(float(rng.uniform(0.1, 2 * np.pi))),
    lambda rng: _gates.ZZ(float(rng.uniform(0.1, 2 * np.pi))),
)
_PAULI_CHANNELS = (
    lambda rng, p: bit_flip(p),
    lambda rng, p: phase_flip(p),
    lambda rng, p: depolarize(p),
    lambda rng, p: AsymmetricDepolarizingChannel(p / 2, p / 4, p / 4),
)


_ROTATION_FAMILIES = (_gates.Rx, _gates.Ry, _gates.Rz, _gates.PhaseShift)
_DIAGONAL_2Q = (
    lambda rng: _gates.CZ,
    lambda rng: _gates.ZZ(float(rng.uniform(0.1, 2 * np.pi))),
    lambda rng: _gates.CPhase(float(rng.uniform(0.1, 2 * np.pi))),
)


def _rotation_chain_circuit(rng, qubits, depth):
    circuit = Circuit()
    for _ in range(depth):
        qubit = qubits[int(rng.integers(0, len(qubits)))]
        family = _ROTATION_FAMILIES[int(rng.integers(0, len(_ROTATION_FAMILIES)))]
        style = int(rng.integers(0, 3))
        if style == 0:  # generic chain: fuses into one rotation
            for _ in range(int(rng.integers(2, 5))):
                circuit.append(family(float(rng.uniform(0.1, 2 * np.pi)))(qubit))
        elif style == 1:  # exact inverse pair: cancels outright
            angle = float(rng.uniform(0.1, 2 * np.pi))
            circuit.append([family(angle)(qubit), family(-angle)(qubit)])
        else:  # chain with a zero-angle degenerate in the middle
            circuit.append(family(float(rng.uniform(0.1, np.pi)))(qubit))
            circuit.append(family(0.0)(qubit))
            circuit.append(family(float(rng.uniform(0.1, np.pi)))(qubit))
        if len(qubits) >= 2 and rng.random() < 0.5:
            pair = rng.permutation(len(qubits))[:2]
            u, v = qubits[int(pair[0])], qubits[int(pair[1])]
            if rng.random() < 0.5:  # swapped-order symmetric ZZ pair
                angle = float(rng.uniform(0.1, np.pi))
                circuit.append([_gates.ZZ(angle)(u, v), _gates.ZZ(angle)(v, u)])
            else:
                circuit.append(_gates.CNOT(u, v))
    return circuit


def _commuting_block_circuit(rng, qubits, depth):
    circuit = Circuit()
    for _ in range(depth):
        kind = int(rng.integers(0, 3))
        if kind == 0:  # diagonal block (everything here mutually commutes)
            for qubit in qubits:
                if rng.random() < 0.6:
                    choice = int(rng.integers(0, 3))
                    gate = (
                        _gates.Rz(float(rng.uniform(0.1, 2 * np.pi)))
                        if choice == 0
                        else (_gates.S if choice == 1 else _gates.Z)
                    )
                    circuit.append(gate(qubit))
            if len(qubits) >= 2:
                pair = rng.permutation(len(qubits))[:2]
                gate = _DIAGONAL_2Q[int(rng.integers(0, len(_DIAGONAL_2Q)))](rng)
                circuit.append(gate(qubits[int(pair[0])], qubits[int(pair[1])]))
        elif kind == 1 and len(qubits) >= 2:  # T ... CNOT ... TDG on a control
            pair = rng.permutation(len(qubits))[:2]
            control, target = qubits[int(pair[0])], qubits[int(pair[1])]
            circuit.append([_gates.T(control), _gates.CNOT(control, target), _gates.TDG(control)])
        elif len(qubits) >= 2:  # X-family through a CNOT target
            pair = rng.permutation(len(qubits))[:2]
            control, target = qubits[int(pair[0])], qubits[int(pair[1])]
            angle = float(rng.uniform(0.1, np.pi))
            circuit.append(
                [_gates.Rx(angle)(target), _gates.CNOT(control, target), _gates.Rx(-angle)(target)]
            )
    return circuit


def _clifford_prefix_circuit(rng, qubits, depth):
    circuit = Circuit()
    head = max(1, depth // 2)
    for _ in range(head):
        for qubit in qubits:
            circuit.append(_CLIFFORD_1Q[int(rng.integers(0, len(_CLIFFORD_1Q)))](rng)(qubit))
        if len(qubits) >= 2:
            pair = rng.permutation(len(qubits))[:2]
            gate = _CLIFFORD_2Q[int(rng.integers(0, len(_CLIFFORD_2Q)))](rng)
            circuit.append(gate(qubits[int(pair[0])], qubits[int(pair[1])]))
    for _ in range(depth - head):  # dense, non-Clifford tail
        for qubit in qubits:
            family = _ROTATION_FAMILIES[int(rng.integers(0, len(_ROTATION_FAMILIES)))]
            circuit.append(family(float(rng.uniform(0.3, 1.2)))(qubit))
        if len(qubits) >= 2:
            pair = rng.permutation(len(qubits))[:2]
            circuit.append(
                _gates.CPhase(float(rng.uniform(0.3, 1.2)))(
                    qubits[int(pair[0])], qubits[int(pair[1])]
                )
            )
    return circuit


def _spectator_circuit(rng, qubits, depth):
    circuit = Circuit()
    for _ in range(depth):
        for qubit in qubits:
            circuit.append(_CLIFFORD_1Q[int(rng.integers(0, len(_CLIFFORD_1Q)))](rng)(qubit))
        order = rng.permutation(len(qubits))
        for i in range(0, len(qubits) - 1, 2):
            gate = _CLIFFORD_2Q[int(rng.integers(0, len(_CLIFFORD_2Q)))](rng)
            circuit.append(gate(qubits[int(order[i])], qubits[int(order[i + 1])]))
    measured_count = int(rng.integers(1, len(qubits))) if len(qubits) > 1 else 1
    measured = sorted(
        (qubits[int(i)] for i in rng.permutation(len(qubits))[:measured_count]),
        key=lambda qubit: qubit.index,
    )
    circuit.append(_gates.measure(*measured, key="m"))
    return circuit


_REWRITE_BUILDERS = {
    "rotation-chains": _rotation_chain_circuit,
    "commuting-blocks": _commuting_block_circuit,
    "clifford-prefix": _clifford_prefix_circuit,
    "spectator": _spectator_circuit,
}


def random_fuzz_circuit(
    seed: int,
    num_qubits: int = 4,
    depth: int = 6,
    alphabet: str = "universal",
) -> Circuit:
    """Build one seeded random circuit from the named gate alphabet.

    Layer structure (base alphabets): one random single-qubit gate per
    qubit, then random two-qubit gates on a random disjoint pairing; the
    ``pauli-noise`` alphabet additionally sprinkles random Pauli-mixture
    channels after each layer.  The rewrite-targeting alphabets
    (:data:`REWRITE_ALPHABETS`) instead emit the structured patterns the
    optimizer passes rewrite.  Same ``(seed, num_qubits, depth, alphabet)``
    -> same circuit.
    """
    if alphabet not in FUZZ_ALPHABETS + REWRITE_ALPHABETS:
        raise ValueError(
            f"alphabet must be one of {FUZZ_ALPHABETS + REWRITE_ALPHABETS}, got {alphabet!r}"
        )
    fuzz_rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=seed,
            spawn_key=(num_qubits, depth, (FUZZ_ALPHABETS + REWRITE_ALPHABETS).index(alphabet)),
        )
    )
    if alphabet in _REWRITE_BUILDERS:
        return _REWRITE_BUILDERS[alphabet](fuzz_rng, LineQubit.range(num_qubits), depth)
    if alphabet == "clifford+t":
        one_q, two_q = _CLIFFORD_1Q + _T_FAMILY, _CLIFFORD_2Q
    elif alphabet == "universal":
        one_q, two_q = _UNIVERSAL_1Q, _UNIVERSAL_2Q
    else:
        one_q, two_q = _CLIFFORD_1Q, _CLIFFORD_2Q
    qubits = LineQubit.range(num_qubits)
    circuit = Circuit()
    for _ in range(depth):
        for qubit in qubits:
            gate = one_q[int(fuzz_rng.integers(0, len(one_q)))](fuzz_rng)
            circuit.append(gate(qubit))
        order = fuzz_rng.permutation(num_qubits)
        for i in range(0, num_qubits - 1, 2):
            gate = two_q[int(fuzz_rng.integers(0, len(two_q)))](fuzz_rng)
            circuit.append(gate(qubits[int(order[i])], qubits[int(order[i + 1])]))
        if alphabet == "pauli-noise":
            for qubit in qubits:
                if fuzz_rng.random() < 0.4:
                    factory = _PAULI_CHANNELS[int(fuzz_rng.integers(0, len(_PAULI_CHANNELS)))]
                    probability = float(fuzz_rng.uniform(0.01, 0.15))
                    circuit.append(factory(fuzz_rng, probability).on(qubit))
    return circuit


@pytest.fixture
def circuit_fuzzer():
    """The seeded random-circuit generator (see :func:`random_fuzz_circuit`)."""
    return random_fuzz_circuit


@pytest.fixture
def bell_circuit():
    q0, q1 = LineQubit.range(2)
    return Circuit([H(q0), CNOT(q0, q1)])


@pytest.fixture
def qaoa_like_circuit():
    """A 4-qubit parameterized QAOA-style circuit (chain graph, one iteration)."""
    qubits = LineQubit.range(4)
    gamma, beta = Symbol("gamma"), Symbol("beta")
    operations = [H(q) for q in qubits]
    operations += [ZZ(2 * gamma)(qubits[i], qubits[i + 1]) for i in range(3)]
    operations += [Rx(2 * beta)(q) for q in qubits]
    return Circuit(operations)


@pytest.fixture
def qaoa_resolver():
    return ParamResolver({"gamma": 0.55, "beta": 0.35})


@pytest.fixture
def noisy_bell_circuit():
    q0, q1 = LineQubit.range(2)
    circuit = Circuit([H(q0), CNOT(q0, q1)])
    return circuit.with_noise(lambda: depolarize(0.05))


@pytest.fixture
def state_vector_simulator():
    return StateVectorSimulator(seed=7)


@pytest.fixture
def density_matrix_simulator():
    return DensityMatrixSimulator(seed=7)


@pytest.fixture
def kc_simulator():
    return KnowledgeCompilationSimulator(seed=7)
