"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.circuits import CNOT, Circuit, H, LineQubit, ParamResolver, Rx, Symbol, ZZ, depolarize
from repro.densitymatrix import DensityMatrixSimulator
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator


@pytest.fixture
def rng():
    return np.random.default_rng(20210419)


@pytest.fixture
def bell_circuit():
    q0, q1 = LineQubit.range(2)
    return Circuit([H(q0), CNOT(q0, q1)])


@pytest.fixture
def qaoa_like_circuit():
    """A 4-qubit parameterized QAOA-style circuit (chain graph, one iteration)."""
    qubits = LineQubit.range(4)
    gamma, beta = Symbol("gamma"), Symbol("beta")
    operations = [H(q) for q in qubits]
    operations += [ZZ(2 * gamma)(qubits[i], qubits[i + 1]) for i in range(3)]
    operations += [Rx(2 * beta)(q) for q in qubits]
    return Circuit(operations)


@pytest.fixture
def qaoa_resolver():
    return ParamResolver({"gamma": 0.55, "beta": 0.35})


@pytest.fixture
def noisy_bell_circuit():
    q0, q1 = LineQubit.range(2)
    circuit = Circuit([H(q0), CNOT(q0, q1)])
    return circuit.with_noise(lambda: depolarize(0.05))


@pytest.fixture
def state_vector_simulator():
    return StateVectorSimulator(seed=7)


@pytest.fixture
def density_matrix_simulator():
    return DensityMatrixSimulator(seed=7)


@pytest.fixture
def kc_simulator():
    return KnowledgeCompilationSimulator(seed=7)
