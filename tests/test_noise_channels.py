"""Tests for noise channels: Kraus completeness and channel semantics."""

import math

import numpy as np
import pytest

from repro.circuits import (
    AmplitudeDampingChannel,
    AsymmetricDepolarizingChannel,
    BitFlipChannel,
    DepolarizingChannel,
    GeneralizedAmplitudeDampingChannel,
    KrausChannel,
    LineQubit,
    MixtureChannel,
    ParamResolver,
    PhaseDampingChannel,
    PhaseFlipChannel,
    Symbol,
    X,
    Z,
)

ALL_CHANNELS = [
    BitFlipChannel(0.1),
    PhaseFlipChannel(0.2),
    DepolarizingChannel(0.15),
    AsymmetricDepolarizingChannel(0.05, 0.1, 0.02),
    AmplitudeDampingChannel(0.3),
    PhaseDampingChannel(0.36),
    GeneralizedAmplitudeDampingChannel(0.7, 0.2),
]


class TestKrausCompleteness:
    @pytest.mark.parametrize("channel", ALL_CHANNELS, ids=lambda c: c.name)
    def test_completeness_relation(self, channel):
        channel.validate()

    def test_kraus_channel_validates_on_construction(self):
        with pytest.raises(ValueError):
            KrausChannel([np.array([[1.0, 0.0], [0.0, 0.5]])])


class TestMixtures:
    def test_bit_flip_mixture_probabilities(self):
        mixture = BitFlipChannel(0.25).mixture()
        probabilities = [p for p, _ in mixture]
        assert probabilities == pytest.approx([0.75, 0.25])
        assert np.allclose(mixture[1][1], X.unitary())

    def test_depolarizing_mixture_sums_to_one(self):
        mixture = DepolarizingChannel(0.3).mixture()
        assert sum(p for p, _ in mixture) == pytest.approx(1.0)
        assert len(mixture) == 4

    def test_phase_damping_is_not_a_mixture(self):
        channel = PhaseDampingChannel(0.36)
        assert not channel.is_mixture
        with pytest.raises(TypeError):
            channel.mixture()

    def test_explicit_mixture_channel(self):
        channel = MixtureChannel([(0.5, np.eye(2)), (0.5, Z.unitary())])
        channel.validate()
        assert channel.is_mixture

    def test_mixture_channel_probability_check(self):
        with pytest.raises(ValueError):
            MixtureChannel([(0.5, np.eye(2)), (0.3, Z.unitary())])


class TestPhaseDamping:
    def test_kraus_operators_match_paper(self):
        """The paper's running example uses gamma = 0.36 -> entries 0.8 and 0.6."""
        operators = PhaseDampingChannel(0.36).kraus_operators()
        assert operators[0][1, 1] == pytest.approx(0.8)
        assert abs(operators[1][1, 1]) == pytest.approx(0.6)
        assert operators[1][0, 0] == pytest.approx(0.0)


class TestParameterValidation:
    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError):
            BitFlipChannel(1.5).kraus_operators()

    def test_symbolic_channel_parameters(self):
        channel = DepolarizingChannel(Symbol("p"))
        assert channel.is_parameterized
        operators = channel.kraus_operators(ParamResolver({"p": 0.06}))
        total = sum(op.conj().T @ op for op in operators)
        assert np.allclose(total, np.eye(2), atol=1e-9)

    def test_asymmetric_depolarizing_probability_bound(self):
        with pytest.raises(ValueError):
            AsymmetricDepolarizingChannel(0.5, 0.4, 0.3).mixture()


class TestNoiseOperations:
    def test_on_builds_noise_operation(self):
        q = LineQubit(0)
        op = DepolarizingChannel(0.1).on(q)
        assert op.is_noise
        assert not op.is_measurement
        assert op.qubits == (q,)
        assert len(op.kraus_operators()) == 4

    def test_wrong_qubit_count_rejected(self):
        q = LineQubit.range(2)
        with pytest.raises(ValueError):
            DepolarizingChannel(0.1).on(*q)

    def test_unitary_raises(self):
        op = BitFlipChannel(0.1).on(LineQubit(0))
        with pytest.raises(TypeError):
            op.unitary()

    def test_with_qubits(self):
        q = LineQubit.range(2)
        op = BitFlipChannel(0.1).on(q[0]).with_qubits(q[1])
        assert op.qubits == (q[1],)
