"""Tests for the gate-decomposition utilities."""

import numpy as np
import pytest

from repro.circuits import CZ, Circuit, CPhase, LineQubit, Rx, Ry, Rz, SWAP, TOFFOLI, H, T, X
from repro.circuits.decompose import (
    decompose_controlled_phase,
    decompose_controlled_unitary,
    decompose_controlled_z,
    decompose_swap,
    decompose_toffoli,
    reconstruct_from_zyz,
    zyz_angles,
)


def circuit_unitary(operations, qubits):
    return Circuit(operations).unitary(qubit_order=qubits)


def random_unitary(seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, r = np.linalg.qr(matrix)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def equal_up_to_global_phase(a, b, atol=1e-8):
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(a[index]) < atol:
        return False
    phase = b[index] / a[index]
    return np.allclose(a * phase, b, atol=atol)


class TestZYZ:
    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_random_unitaries(self, seed):
        unitary = random_unitary(seed)
        angles = zyz_angles(unitary)
        assert np.allclose(reconstruct_from_zyz(*angles), unitary, atol=1e-8)

    @pytest.mark.parametrize("gate", [H, X, T], ids=lambda g: g.name)
    def test_round_trip_named_gates(self, gate):
        angles = zyz_angles(gate.unitary())
        assert np.allclose(reconstruct_from_zyz(*angles), gate.unitary(), atol=1e-8)

    @pytest.mark.parametrize("angle", [0.0, 0.4, np.pi / 2, np.pi])
    def test_round_trip_rotations(self, angle):
        for gate in (Rx(angle), Ry(angle), Rz(angle)):
            angles = zyz_angles(gate.unitary())
            assert np.allclose(reconstruct_from_zyz(*angles), gate.unitary(), atol=1e-8)

    def test_rejects_two_qubit_input(self):
        with pytest.raises(ValueError):
            zyz_angles(np.eye(4))


class TestTwoQubitDecompositions:
    def test_swap(self):
        q = LineQubit.range(2)
        assert np.allclose(circuit_unitary(decompose_swap(*q), q), SWAP.unitary(), atol=1e-9)

    def test_controlled_z(self):
        q = LineQubit.range(2)
        assert np.allclose(circuit_unitary(decompose_controlled_z(*q), q), CZ.unitary(), atol=1e-9)

    @pytest.mark.parametrize("angle", [0.3, np.pi / 2, 1.7])
    def test_controlled_phase(self, angle):
        q = LineQubit.range(2)
        decomposed = circuit_unitary(decompose_controlled_phase(angle, *q), q)
        assert np.allclose(decomposed, CPhase(angle).unitary(), atol=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_controlled_random_unitary(self, seed):
        q = LineQubit.range(2)
        unitary = random_unitary(seed + 100)
        decomposed = circuit_unitary(decompose_controlled_unitary(unitary, q[0], q[1]), q)
        expected = np.eye(4, dtype=complex)
        expected[2:, 2:] = unitary
        assert equal_up_to_global_phase(decomposed, expected)

    def test_controlled_x_equals_cnot(self):
        from repro.circuits import CNOT

        q = LineQubit.range(2)
        decomposed = circuit_unitary(decompose_controlled_unitary(X.unitary(), q[0], q[1]), q)
        assert equal_up_to_global_phase(decomposed, CNOT.unitary())


class TestToffoli:
    def test_matches_toffoli_unitary(self):
        q = LineQubit.range(3)
        decomposed = circuit_unitary(decompose_toffoli(*q), q)
        assert np.allclose(decomposed, TOFFOLI.unitary(), atol=1e-9)

    def test_simulates_identically(self):
        from repro.statevector import StateVectorSimulator

        q = LineQubit.range(3)
        native = Circuit([H(q[0]), H(q[1]), TOFFOLI(*q)])
        decomposed = Circuit([H(q[0]), H(q[1])] + decompose_toffoli(*q))
        native_state = StateVectorSimulator().simulate(native, qubit_order=q).state_vector
        decomposed_state = StateVectorSimulator().simulate(decomposed, qubit_order=q).state_vector
        assert np.allclose(native_state, decomposed_state, atol=1e-9)
