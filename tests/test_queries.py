"""Tests for the Section 5 extension queries: MPE over noise events and sensitivity analysis."""

import numpy as np
import pytest

from repro.circuits import CNOT, Circuit, H, LineQubit, Rx, bit_flip, depolarize
from repro.knowledge.queries import (
    NoiseExplanation,
    most_probable_explanation,
    sensitivity_analysis,
)
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator


@pytest.fixture
def kc():
    return KnowledgeCompilationSimulator(seed=2)


class TestMostProbableExplanation:
    def test_bit_flip_explains_flipped_outcome(self, kc):
        """Prepare |0>, add a bit-flip channel; observing 1 must be blamed on the flip."""
        q = LineQubit(0)
        circuit = Circuit([H(q), H(q)])  # identity on |0>, gives the BN some structure
        circuit.append(bit_flip(0.1).on(q))
        compiled = kc.compile_circuit(circuit)
        explanation = most_probable_explanation(compiled, [1])
        assert explanation.exact
        assert explanation.branches == (1,)  # Kraus branch 1 = the X flip
        assert explanation.posterior == pytest.approx(1.0)

    def test_no_flip_explains_unflipped_outcome(self, kc):
        q = LineQubit(0)
        circuit = Circuit([H(q), H(q)])
        circuit.append(bit_flip(0.1).on(q))
        compiled = kc.compile_circuit(circuit)
        explanation = most_probable_explanation(compiled, [0])
        assert explanation.branches == (0,)

    def test_depolarized_bell_explanation(self, kc):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1])])
        circuit.append(depolarize(0.05).on(q[1]))
        compiled = kc.compile_circuit(circuit)
        # Outcome 01 is impossible without noise; the explanation must be a
        # bit-flipping Pauli branch (X = branch 1 or Y = branch 2).
        explanation = most_probable_explanation(compiled, [0, 1])
        assert explanation.branches[0] in (1, 2)
        assert explanation.probability > 0

    def test_ideal_circuit_rejected(self, kc, bell_circuit):
        compiled = kc.compile_circuit(bell_circuit)
        with pytest.raises(ValueError):
            most_probable_explanation(compiled, [0, 0])

    def test_as_dict_and_repr(self, kc):
        q = LineQubit(0)
        circuit = Circuit([H(q), H(q)])
        circuit.append(bit_flip(0.25).on(q))
        compiled = kc.compile_circuit(circuit)
        explanation = most_probable_explanation(compiled, [1])
        assert list(explanation.as_dict().values()) == [1]
        assert "NoiseExplanation" in repr(explanation)


class TestSensitivityAnalysis:
    def test_probability_gradient_matches_finite_difference(self, kc):
        """dP/dtheta for the Rx cosine entry should match a numeric derivative."""
        q = LineQubit(0)
        theta = 0.7
        circuit = Circuit([Rx(theta)(q)])
        compiled = kc.compile_circuit(circuit)
        report = sensitivity_analysis(compiled, [0])
        # P(0) = cos^2(theta/2); the entries with value cos(theta/2) are the
        # (in=0 -> out=0) and (in=1 -> out=1) diagonal entries, but only the
        # first is reachable from |0>.  Its dP/dtheta should be 2*cos(theta/2).
        cos_half = np.cos(theta / 2)
        matching = [
            row
            for row in report.rows
            if abs(row["current_value"] - cos_half) < 1e-9 and abs(row["dP_dtheta"]) > 1e-9
        ]
        assert matching
        assert matching[0]["dP_dtheta"] == pytest.approx(2 * cos_half)

    def test_unreachable_entries_have_zero_sensitivity(self, kc):
        q = LineQubit(0)
        circuit = Circuit([Rx(0.7)(q)])
        compiled = kc.compile_circuit(circuit)
        report = sensitivity_analysis(compiled, [0])
        # Entries conditioned on the input being |1> can never be reached from |0>.
        unreachable = [row for row in report.rows if row["entry_index"][0] == 1]
        assert unreachable
        assert all(abs(row["dP_dtheta"]) < 1e-12 for row in unreachable)

    def test_noisy_circuit_requires_branches(self, kc, noisy_bell_circuit):
        compiled = kc.compile_circuit(noisy_bell_circuit)
        with pytest.raises(ValueError):
            sensitivity_analysis(compiled, [0, 0])
        report = sensitivity_analysis(
            compiled, [0, 0], noise_branches=[0] * len(compiled.noise_variables)
        )
        assert len(report) == len(compiled.encoding.weight_refs)

    def test_report_helpers(self, kc, qaoa_like_circuit, qaoa_resolver):
        compiled = kc.compile_circuit(qaoa_like_circuit)
        report = sensitivity_analysis(compiled, [0, 0, 0, 0], resolver=qaoa_resolver)
        top = report.top(3)
        assert len(top) == 3
        assert abs(top[0]["dP_dtheta"]) >= abs(top[-1]["dP_dtheta"])
        per_node = report.by_node()
        assert per_node
        assert all(value >= 0 for value in per_node.values())
