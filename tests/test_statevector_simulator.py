"""Tests for the state-vector simulator backend."""

import numpy as np
import pytest

from repro.circuits import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    Rx,
    Ry,
    X,
    Z,
    amplitude_damp,
    bit_flip,
    depolarize,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.statevector import StateVectorSimulator


class TestIdealSimulation:
    def test_bell_state(self, bell_circuit, state_vector_simulator):
        result = state_vector_simulator.simulate(bell_circuit)
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(result.state_vector, expected)

    def test_ghz_state(self, state_vector_simulator):
        q = LineQubit.range(3)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1]), CNOT(q[1], q[2])])
        probabilities = state_vector_simulator.simulate(circuit).probabilities()
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[7] == pytest.approx(0.5)

    def test_matches_circuit_unitary(self, qaoa_like_circuit, qaoa_resolver, state_vector_simulator):
        result = state_vector_simulator.simulate(qaoa_like_circuit, qaoa_resolver)
        unitary = qaoa_like_circuit.unitary(resolver=qaoa_resolver)
        assert np.allclose(result.state_vector, unitary[:, 0])

    def test_initial_state(self, state_vector_simulator):
        q = LineQubit.range(2)
        circuit = Circuit([CNOT(q[0], q[1])])
        result = state_vector_simulator.simulate(circuit, initial_state=2)  # |10>
        assert result.probabilities()[3] == pytest.approx(1.0)

    def test_measurements_are_ignored_for_state(self, state_vector_simulator):
        from repro.circuits import measure

        q = LineQubit.range(1)
        circuit = Circuit([H(q[0]), measure(q[0])])
        result = state_vector_simulator.simulate(circuit)
        assert np.allclose(result.probabilities(), [0.5, 0.5])

    def test_noise_rejected_in_ideal_mode(self, noisy_bell_circuit, state_vector_simulator):
        with pytest.raises(ValueError):
            state_vector_simulator.simulate(noisy_bell_circuit)

    def test_amplitude_and_dirac_notation(self, bell_circuit, state_vector_simulator):
        result = state_vector_simulator.simulate(bell_circuit)
        assert result.amplitude([1, 1]) == pytest.approx(1 / np.sqrt(2))
        assert result.amplitude([0, 1]) == pytest.approx(0.0)
        assert "|00>" in result.dirac_notation()


class TestSampling:
    def test_bell_sampling_only_00_and_11(self, bell_circuit, state_vector_simulator):
        samples = state_vector_simulator.sample(bell_circuit, 500, seed=1)
        observed = set(samples.bitstring_counts())
        assert observed <= {"00", "11"}
        assert len(samples) == 500

    def test_sampling_frequencies(self, state_vector_simulator):
        q = LineQubit(0)
        circuit = Circuit([Ry(2 * np.arcsin(np.sqrt(0.2)))(q)])
        samples = state_vector_simulator.sample(circuit, 4000, seed=2)
        ones = samples.bitstring_counts().get("1", 0)
        assert 0.15 < ones / 4000 < 0.26

    def test_seeded_sampling_reproducible(self, bell_circuit):
        simulator = StateVectorSimulator()
        first = simulator.sample(bell_circuit, 100, seed=11).samples
        second = simulator.sample(bell_circuit, 100, seed=11).samples
        assert first == second


class TestTrajectories:
    def test_trajectory_preserves_norm(self, noisy_bell_circuit, state_vector_simulator):
        result = state_vector_simulator.simulate_trajectory(noisy_bell_circuit, seed=3)
        assert np.linalg.norm(result.state_vector) == pytest.approx(1.0)

    def test_trajectory_average_matches_density_matrix(self):
        q = LineQubit(0)
        circuit = Circuit([H(q)])
        circuit.append(amplitude_damp(0.4).on(q))
        simulator = StateVectorSimulator(seed=5)
        average = np.zeros((2, 2), dtype=complex)
        num_trajectories = 800
        for index in range(num_trajectories):
            state = simulator.simulate_trajectory(circuit, seed=index).state_vector
            average += np.outer(state, state.conj()) / num_trajectories
        expected = DensityMatrixSimulator().simulate(circuit).density_matrix
        assert np.allclose(average, expected, atol=0.06)

    def test_noisy_sampling_distribution(self):
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(bit_flip(0.25).on(q))
        simulator = StateVectorSimulator(seed=7)
        samples = simulator.sample(circuit, 2000, seed=9)
        zeros = samples.bitstring_counts().get("0", 0)
        assert 0.18 < zeros / 2000 < 0.32
