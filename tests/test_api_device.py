"""Acceptance tests for the unified Device/Job execution API.

The tentpole contract: ``device("auto").run([...])`` on a mixed
Clifford/universal/noisy batch of >= 100 circuits

* routes every item to the backend ``select_backend`` (the HybridSimulator
  rule) chooses for it,
* compiles each distinct topology exactly once on the knowledge-compilation
  route,
* reproduces the per-class legacy backend results to 1e-10 (bit-identical
  samples, in fact, thanks to the ``seed + index`` fan-out).
"""

import numpy as np
import pytest

from repro import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    ParamResolver,
    Rx,
    Rz,
    StabilizerSimulator,
    StateVectorSimulator,
    Symbol,
    ZZ,
    depolarize,
    device,
    select_backend,
)
from repro.api import backend_capabilities, capability_matrix, list_backends
from repro.api.device import Device
from repro.densitymatrix import DensityMatrixSimulator
from repro.errors import BackendCapabilityError
from repro.knowledge.compiler import KnowledgeCompiler
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator


def _mixed_batch(num_items=102):
    """>=100 circuits: Clifford, universal (shared topology), noisy Clifford."""
    q = LineQubit.range(3)
    batch = []
    for k in range(num_items):
        kind = k % 3
        if kind == 0:  # pure Clifford
            batch.append(Circuit([H(q[0]), CNOT(q[0], q[1]), CNOT(q[1], q[2])]))
        elif kind == 1:  # universal: one shared topology, varying angle
            batch.append(
                Circuit([H(q[0]), Rx(0.15 + 0.01 * k)(q[1]), CNOT(q[0], q[1])])
            )
        else:  # Clifford + Pauli noise
            batch.append(
                Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.04))
            )
    return batch


class TestAutoRoutingParity:
    def test_mixed_batch_routes_like_select_backend(self):
        batch = _mixed_batch()
        result = device("auto", seed=0).run(batch, repetitions=8, seed=0).result()
        assert len(result) == len(batch)
        expected = [select_backend(circuit, sampling=True).backend for circuit in batch]
        assert result.backends() == expected
        assert set(expected) == {"stabilizer", "state_vector"}

    def test_samples_match_legacy_backends_bit_for_bit(self):
        batch = _mixed_batch(30)
        seed = 23
        result = device("auto", seed=0).run(batch, repetitions=25, seed=seed).result()
        for index, (circuit, row) in enumerate(zip(batch, result)):
            decision = select_backend(circuit, sampling=True)
            legacy_cls = {
                "stabilizer": StabilizerSimulator,
                "state_vector": StateVectorSimulator,
            }[decision.backend]
            legacy = legacy_cls().sample(circuit, 25, seed=seed + index)
            assert row["samples"].samples == legacy.samples, f"item {index}"

    def test_probabilities_match_legacy_backends_1e10(self):
        batch = _mixed_batch(30)
        result = device("auto", seed=0).run(batch, observables=["probabilities"]).result()
        for index, (circuit, row) in enumerate(zip(batch, result)):
            if circuit.has_noise:
                reference = DensityMatrixSimulator().simulate(circuit).probabilities()
                assert row["backend"] == "density_matrix"
            elif row["backend"] == "stabilizer":
                reference = StabilizerSimulator().simulate(circuit).probabilities()
            else:
                reference = StateVectorSimulator().simulate(circuit).probabilities()
            assert np.max(np.abs(row["probabilities"] - reference)) < 1e-10, f"item {index}"


class TestTopologyGrouping:
    def test_shared_topology_compiles_exactly_once(self, monkeypatch):
        compile_calls = []
        original = KnowledgeCompiler.compile

        def counting_compile(self, *args, **kwargs):
            compile_calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(KnowledgeCompiler, "compile", counting_compile)
        batch = [
            circuit for circuit in _mixed_batch(102) if not circuit.has_noise
        ]
        simulator = KnowledgeCompilationSimulator(seed=0, cache=None)
        # Route everything to the KC backend: cache disabled, so every
        # d-DNNF build calls KnowledgeCompiler.compile -- but grouping by
        # topology means the two distinct topologies compile exactly twice.
        dev = Device(backend="knowledge_compilation", instances={"knowledge_compilation": simulator})
        result = dev.run(batch, observables=["probabilities"]).result()
        assert len(result) == len(batch)
        assert len(compile_calls) == 2  # one Clifford skeleton + one rotation topology
        # Repeated runs on the same device reuse the per-topology memo even
        # though the simulator's own cache is disabled.
        dev.run(batch[:4], observables=["probabilities"]).result()
        assert len(compile_calls) == 2

    def test_cache_disabled_sweep_compiles_once(self, monkeypatch):
        from repro.simulator.sweep import ParameterSweep

        compile_calls = []
        original = KnowledgeCompiler.compile

        def counting_compile(self, *args, **kwargs):
            compile_calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(KnowledgeCompiler, "compile", counting_compile)
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), Rx(Symbol("a"))(q[1]), CNOT(q[0], q[1])])
        sweep = ParameterSweep(circuit, KnowledgeCompilationSimulator(seed=0, cache=None))
        sweep.run([{"a": 0.3}, {"a": 0.9}], observables=["probabilities"], repetitions=5, seed=0)
        sweep.run([{"a": 0.1}], observables=["probabilities"])
        assert sweep.has_compiled
        assert len(compile_calls) == 1

    def test_auto_sweep_cache_disabled_adopts_device_compile(self, monkeypatch):
        from repro.simulator.sweep import ParameterSweep

        compile_calls = []
        original = KnowledgeCompiler.compile

        def counting_compile(self, *args, **kwargs):
            compile_calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(KnowledgeCompiler, "compile", counting_compile)
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), Rx(Symbol("a"))(q[1]), CNOT(q[0], q[1])])
        sweep = ParameterSweep(
            circuit, KnowledgeCompilationSimulator(seed=0, cache=None), dispatch="auto"
        )
        result = sweep.run([{"a": 0.0}, {"a": 0.37}], observables=["probabilities"])
        assert result.backends() == ["stabilizer", "kc"]
        assert sweep.has_compiled
        assert len(compile_calls) == 1

    def test_sweep_result_inherited_accessors(self):
        from repro.simulator.sweep import ParameterSweep

        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), Rx(Symbol("a"))(q[1]), CNOT(q[0], q[1])])
        result = ParameterSweep(circuit, KnowledgeCompilationSimulator(seed=0)).run(
            [{"a": 0.2}, {"a": 0.8}], observables=["probabilities"], repetitions=6, seed=1
        )
        assert result.backends() == ["kc", "kc"]
        assert len(result.sample_results()) == 2
        assert all(len(samples) == 6 for samples in result.sample_results())

    def test_sweep_spec_compiles_once_and_matches_dense(self):
        q = LineQubit.range(4)
        theta, phi = Symbol("theta"), Symbol("phi")
        ansatz = Circuit(
            [H(qq) for qq in q]
            + [ZZ(theta)(q[0], q[1]), ZZ(theta)(q[2], q[3])]
            + [Rx(phi)(qq) for qq in q]
        )
        points = [{"theta": 0.1 * k + 0.05, "phi": 0.3 - 0.02 * k} for k in range(12)]
        result = (
            device("kc", seed=0)
            .run(ansatz, params=points, observables=["probabilities"])
            .result()
        )
        for row, point in zip(result, points):
            resolved = ansatz.resolve_parameters(ParamResolver(point))
            reference = StateVectorSimulator().simulate(resolved).probabilities()
            assert np.max(np.abs(row["probabilities"] - reference)) < 1e-10


class TestCapabilityRegistry:
    def test_every_backend_declares_capabilities(self):
        names = list_backends()
        assert {
            "state_vector",
            "density_matrix",
            "tensor_network",
            "trajectory",
            "stabilizer",
            "knowledge_compilation",
        } <= set(names)
        matrix = capability_matrix()
        assert [row["backend"] for row in matrix] == names

    def test_aliases_resolve(self):
        assert backend_capabilities("kc").name == "knowledge_compilation"
        assert backend_capabilities("sv").name == "state_vector"

    def test_unknown_backend_is_typed_error(self):
        with pytest.raises(BackendCapabilityError, match="unknown backend"):
            device("qpu")

    def test_capability_violations_raise_before_running(self):
        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.1))
        with pytest.raises(BackendCapabilityError, match="ideal circuits only"):
            device("tensor_network").run(noisy, repetitions=10)
        with pytest.raises(BackendCapabilityError, match="mixed-state"):
            device("state_vector").run(noisy, observables=["probabilities"])
        with pytest.raises(BackendCapabilityError, match="no state vector"):
            device("density_matrix").run(noisy, observables=["state_vector"])

    def test_fixed_device_reports_capabilities(self):
        caps = device("stabilizer").capabilities()
        assert caps.clifford_only and caps.max_qubits is None

    def test_stabilizer_noisy_dense_observables_fail_fast(self):
        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), CNOT(q[0], q[1])]).with_noise(lambda: depolarize(0.1))
        with pytest.raises(BackendCapabilityError, match="mixed-state"):
            device("stabilizer").run(noisy, observables=["probabilities"])
        with pytest.raises(BackendCapabilityError, match="mixed-state"):
            device("stabilizer").run(noisy, observables=["probabilities"], repetitions=10)

    def test_hybrid_distinct_same_name_fallbacks_keep_their_instances(self):
        from repro import HybridSimulator

        pure = DensityMatrixSimulator(seed=1)
        noisy_backend = DensityMatrixSimulator(seed=2)
        simulator = HybridSimulator(fallback=pure, noisy_fallback=noisy_backend, seed=0)
        q = LineQubit.range(2)
        noisy = Circuit([H(q[0]), Rx(0.3)(q[1]), CNOT(q[0], q[1])]).with_noise(
            lambda: depolarize(0.1)
        )
        dev = simulator.device
        assert dev.backend_instance(dev.decide(noisy, sampling=False).backend) is noisy_backend
        assert dev.backend_instance(dev.decide(noisy, sampling=True).backend) is pure


class TestRunSurface:
    def test_single_circuit_and_list_and_sweep_spec(self):
        q = LineQubit.range(2)
        bell = Circuit([H(q[0]), CNOT(q[0], q[1])])
        rot = Circuit([Rx(Symbol("a"))(q[0]), CNOT(q[0], q[1])])
        dev = device("auto", seed=0)
        assert len(dev.run(bell, repetitions=5, seed=0).result()) == 1
        assert len(dev.run([bell, bell], repetitions=5, seed=0).result()) == 2
        sweep = dev.run(rot, params=[{"a": 0.1}, {"a": 0.7}], repetitions=5, seed=0).result()
        assert [row["parameters"] for row in sweep] == [{"a": 0.1}, {"a": 0.7}]

    def test_argument_validation(self):
        q = LineQubit.range(2)
        bell = Circuit([H(q[0]), CNOT(q[0], q[1])])
        dev = device("auto")
        with pytest.raises(ValueError, match="unknown observables"):
            dev.run(bell, observables=["entanglement"])
        with pytest.raises(ValueError, match="repetitions"):
            dev.run(bell, observables=["samples"])
        with pytest.raises(ValueError, match="objective"):
            dev.run(bell, observables=["expectation"])
        with pytest.raises(ValueError, match="params length"):
            dev.run([bell, bell], params=[None])
        with pytest.raises(ValueError, match="at least one circuit"):
            dev.run([])

    def test_expectation_observable(self):
        q = LineQubit.range(2)
        bell = Circuit([H(q[0]), CNOT(q[0], q[1])])
        result = (
            device("auto")
            .run(bell, observables=["expectation"], objective=lambda p: float(p[0]))
            .result()
        )
        assert result.expectations()[0] == pytest.approx(0.5)

    def test_exact_sampling_matches_distribution(self):
        q = LineQubit.range(2)
        rot = Circuit([Rx(0.7)(q[0]), CNOT(q[0], q[1])])
        result = (
            device("kc", seed=0)
            .run(rot, repetitions=4000, seed=7, sampling="exact", observables=["probabilities", "samples"])
            .result()
        )
        empirical = result.sample_results()[0].empirical_distribution()
        assert np.max(np.abs(empirical - result.probabilities()[0])) < 0.05

    def test_hybrid_simulator_is_device_backed(self):
        from repro import HybridSimulator

        simulator = HybridSimulator(seed=0)
        assert isinstance(simulator.device, Device)
        q = LineQubit.range(2)
        simulator.sample(Circuit([H(q[0]), CNOT(q[0], q[1])]), 5)
        assert simulator.last_decision.backend == "stabilizer"
