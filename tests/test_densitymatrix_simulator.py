"""Tests for the density-matrix simulator backend."""

import numpy as np
import pytest

from repro.circuits import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    X,
    amplitude_damp,
    bit_flip,
    depolarize,
    phase_damp,
    phase_flip,
)
from repro.densitymatrix import DensityMatrixSimulator
from repro.statevector import StateVectorSimulator


class TestIdealAgreement:
    def test_matches_state_vector_on_ideal_circuit(self, qaoa_like_circuit, qaoa_resolver):
        rho = DensityMatrixSimulator().simulate(qaoa_like_circuit, qaoa_resolver).density_matrix
        state = StateVectorSimulator().simulate(qaoa_like_circuit, qaoa_resolver).state_vector
        assert np.allclose(rho, np.outer(state, state.conj()), atol=1e-9)

    def test_pure_state_purity(self, bell_circuit, density_matrix_simulator):
        result = density_matrix_simulator.simulate(bell_circuit)
        assert result.purity() == pytest.approx(1.0)


class TestNoiseModels:
    def test_paper_noisy_bell_density_matrix(self):
        """Equation 3 of the paper: phase damping with gamma=0.36 inside a Bell circuit."""
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0])])
        circuit.append(phase_damp(0.36).on(q[0]))
        circuit.append(CNOT(q[0], q[1]))
        rho = DensityMatrixSimulator().simulate(circuit).density_matrix
        expected = np.zeros((4, 4), dtype=complex)
        expected[0, 0] = expected[3, 3] = 0.5
        expected[0, 3] = expected[3, 0] = 0.4
        assert np.allclose(rho, expected, atol=1e-9)

    def test_bit_flip_distribution(self):
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(bit_flip(0.3).on(q))
        probabilities = DensityMatrixSimulator().simulate(circuit).probabilities()
        assert probabilities[0] == pytest.approx(0.3)
        assert probabilities[1] == pytest.approx(0.7)

    def test_phase_flip_leaves_populations(self):
        q = LineQubit(0)
        circuit = Circuit([H(q)])
        circuit.append(phase_flip(0.5).on(q))
        rho = DensityMatrixSimulator().simulate(circuit).density_matrix
        # Fully dephased: off-diagonals vanish, populations stay 1/2.
        assert rho[0, 1] == pytest.approx(0.0)
        assert rho[0, 0] == pytest.approx(0.5)

    def test_amplitude_damping_decays_excited_state(self):
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(amplitude_damp(0.25).on(q))
        probabilities = DensityMatrixSimulator().simulate(circuit).probabilities()
        assert probabilities[0] == pytest.approx(0.25)
        assert probabilities[1] == pytest.approx(0.75)

    def test_depolarizing_mixes_towards_identity(self):
        q = LineQubit(0)
        circuit = Circuit([X(q)])
        circuit.append(depolarize(0.75).on(q))
        rho = DensityMatrixSimulator().simulate(circuit).density_matrix
        assert rho[0, 0] == pytest.approx(0.5)
        assert rho[1, 1] == pytest.approx(0.5)

    def test_trace_preserved_through_deep_noisy_circuit(self, noisy_bell_circuit):
        rho = DensityMatrixSimulator().simulate(noisy_bell_circuit).density_matrix
        assert np.trace(rho).real == pytest.approx(1.0)
        assert np.allclose(rho, rho.conj().T)

    def test_noise_reduces_purity(self, noisy_bell_circuit, density_matrix_simulator):
        result = density_matrix_simulator.simulate(noisy_bell_circuit)
        assert result.purity() < 1.0


class TestSampling:
    def test_sampling_matches_diagonal(self, noisy_bell_circuit):
        simulator = DensityMatrixSimulator()
        exact = simulator.simulate(noisy_bell_circuit).probabilities()
        samples = simulator.sample(noisy_bell_circuit, 4000, seed=3)
        empirical = samples.empirical_distribution()
        assert 0.5 * np.abs(empirical - exact).sum() < 0.05

    def test_probability_of_specific_bits(self, bell_circuit, density_matrix_simulator):
        result = density_matrix_simulator.simulate(bell_circuit)
        assert result.probability_of([1, 1]) == pytest.approx(0.5)
        assert result.probability_of([1, 0]) == pytest.approx(0.0)
