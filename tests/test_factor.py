"""Tests for complex-valued factors (the variable-elimination workhorse)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet import Factor, multiply_all


def random_factor(variables, cards, seed):
    rng = np.random.default_rng(seed)
    shape = tuple(cards)
    values = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    return Factor(variables, cards, values)


class TestFactorConstruction:
    def test_shape_validated(self):
        with pytest.raises(ValueError):
            Factor(["a"], [2], np.zeros((3,)))

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            Factor(["a", "a"], [2, 2], np.zeros((2, 2)))

    def test_scalar_factor(self):
        scalar = Factor.scalar(2.5)
        assert scalar.variables == []
        assert complex(scalar.values) == 2.5


class TestFactorAlgebra:
    def test_multiply_disjoint_is_outer_product(self):
        a = Factor(["x"], [2], np.array([1.0, 2.0]))
        b = Factor(["y"], [2], np.array([3.0, 5.0]))
        product = a.multiply(b)
        assert set(product.variables) == {"x", "y"}
        assert product.value_at({"x": 1, "y": 1}) == pytest.approx(10.0)

    def test_multiply_shared_variable(self):
        a = Factor(["x", "y"], [2, 2], np.arange(4).reshape(2, 2).astype(complex))
        b = Factor(["y"], [2], np.array([10.0, 100.0]))
        product = a.multiply(b)
        assert product.value_at({"x": 1, "y": 0}) == pytest.approx(20.0)
        assert product.value_at({"x": 1, "y": 1}) == pytest.approx(300.0)

    def test_multiply_respects_axis_alignment(self):
        a = random_factor(["b", "a"], [2, 3], seed=1)
        b = random_factor(["a", "c"], [3, 2], seed=2)
        product = a.multiply(b)
        for ai in range(3):
            for bi in range(2):
                for ci in range(2):
                    expected = a.value_at({"b": bi, "a": ai}) * b.value_at({"a": ai, "c": ci})
                    assert product.value_at({"a": ai, "b": bi, "c": ci}) == pytest.approx(expected)

    def test_cardinality_mismatch_rejected(self):
        a = Factor(["x"], [2], np.zeros(2))
        b = Factor(["x"], [3], np.zeros(3))
        with pytest.raises(ValueError):
            a.multiply(b)

    def test_sum_out(self):
        factor = Factor(["x", "y"], [2, 2], np.array([[1, 2], [3, 4]], dtype=complex))
        reduced = factor.sum_out("x")
        assert reduced.variables == ["y"]
        assert np.allclose(reduced.values, [4, 6])

    def test_sum_out_missing_variable_is_noop(self):
        factor = Factor(["x"], [2], np.array([1.0, 2.0]))
        assert np.allclose(factor.sum_out("z").values, factor.values)

    def test_reduce_evidence(self):
        factor = Factor(["x", "y"], [2, 2], np.array([[1, 2], [3, 4]], dtype=complex))
        reduced = factor.reduce({"x": 1})
        assert reduced.variables == ["y"]
        assert np.allclose(reduced.values, [3, 4])

    def test_max_out_by_magnitude(self):
        factor = Factor(["x"], [2], np.array([1.0, -3.0]))
        assert complex(factor.max_out("x").values) == pytest.approx(-3.0)

    def test_multiply_all_empty(self):
        assert complex(multiply_all([]).values) == 1.0


class TestFactorProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_multiplication_commutative(self, seed):
        a = random_factor(["x", "y"], [2, 2], seed)
        b = random_factor(["y", "z"], [2, 2], seed + 1)
        ab = a.multiply(b)
        ba = b.multiply(a)
        for xi in range(2):
            for yi in range(2):
                for zi in range(2):
                    assignment = {"x": xi, "y": yi, "z": zi}
                    assert ab.value_at(assignment) == pytest.approx(ba.value_at(assignment))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_sum_out_then_multiply_scalar(self, seed):
        """Summing out all variables equals the sum of all entries."""
        factor = random_factor(["x", "y"], [2, 2], seed)
        total = factor.sum_out("x").sum_out("y")
        assert complex(total.values) == pytest.approx(factor.values.sum())
