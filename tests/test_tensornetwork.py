"""Tests for the tensor-network contraction simulator."""

import numpy as np
import pytest

from repro.circuits import CNOT, Circuit, H, LineQubit, Rx, X, ZZ, depolarize
from repro.statevector import StateVectorSimulator
from repro.tensornetwork import (
    Tensor,
    TensorNetworkSimulator,
    circuit_to_network,
    contract_network,
    contract_pair,
    contraction_cost,
    interaction_graph,
    min_degree_index_order,
)


class TestTensorPrimitives:
    def test_contract_pair_matrix_vector(self):
        matrix = Tensor(np.array([[1, 2], [3, 4]], dtype=complex), ["out", "in"])
        vector = Tensor(np.array([1, 1], dtype=complex), ["in"])
        result = contract_pair(matrix, vector)
        assert result.indices == ["out"]
        assert np.allclose(result.data, [3, 7])

    def test_contraction_cost(self):
        a = Tensor(np.zeros((2, 2)), ["i", "j"])
        b = Tensor(np.zeros((2, 2)), ["j", "k"])
        assert contraction_cost(a, b) == 4

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2)), ["i"])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2)), ["i", "i"])


class TestNetworkConstruction:
    def test_bell_network_structure(self, bell_circuit):
        network = circuit_to_network(bell_circuit, output_bits=[0, 0])
        # 2 initial states + 2 gate tensors (H and CNOT) + 2 output projectors.
        assert network.num_tensors == 6
        assert network.open_indices == []

    def test_open_outputs(self, bell_circuit):
        network = circuit_to_network(bell_circuit)
        assert len(network.open_indices) == 2

    def test_noise_rejected(self, noisy_bell_circuit):
        with pytest.raises(ValueError):
            circuit_to_network(noisy_bell_circuit)


class TestContraction:
    @pytest.mark.parametrize("method", ["greedy", "min_degree"])
    def test_bell_amplitudes(self, bell_circuit, method):
        simulator = TensorNetworkSimulator(contraction_method=method)
        assert simulator.amplitude(bell_circuit, [0, 0]) == pytest.approx(1 / np.sqrt(2))
        assert simulator.amplitude(bell_circuit, [1, 1]) == pytest.approx(1 / np.sqrt(2))
        assert simulator.amplitude(bell_circuit, [0, 1]) == pytest.approx(0.0)

    def test_unknown_method_rejected(self, bell_circuit):
        network = circuit_to_network(bell_circuit, output_bits=[0, 0])
        with pytest.raises(ValueError):
            contract_network(network, method="nope")

    def test_amplitudes_match_state_vector(self, qaoa_like_circuit, qaoa_resolver):
        resolved = qaoa_like_circuit.resolve_parameters(qaoa_resolver)
        state = StateVectorSimulator().simulate(resolved).state_vector
        simulator = TensorNetworkSimulator()
        for index in [0, 3, 7, 12, 15]:
            bits = [(index >> (3 - i)) & 1 for i in range(4)]
            assert simulator.amplitude(resolved, bits) == pytest.approx(state[index], abs=1e-9)

    def test_full_state_simulation(self, bell_circuit):
        result = TensorNetworkSimulator().simulate(bell_circuit)
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(result.state_vector, expected)

    def test_interaction_graph_and_order(self, bell_circuit):
        network = circuit_to_network(bell_circuit, output_bits=[0, 0])
        graph = interaction_graph(network)
        assert graph.number_of_nodes() == len(network.all_indices())
        order = min_degree_index_order(network)
        assert set(order) == set(network.all_indices())


class TestTensorNetworkSampling:
    def test_sampling_bell_support(self, bell_circuit):
        simulator = TensorNetworkSimulator(seed=3)
        samples = simulator.sample(bell_circuit, 200, seed=3)
        assert set(samples.bitstring_counts()) <= {"00", "11"}

    def test_sampling_distribution_on_biased_circuit(self):
        q = LineQubit(0)
        circuit = Circuit([Rx(2 * np.arcsin(np.sqrt(0.15)))(q)])
        simulator = TensorNetworkSimulator(seed=5)
        samples = simulator.sample(circuit, 600, seed=5)
        ones = samples.bitstring_counts().get("1", 0) / 600
        assert 0.05 < ones < 0.3
