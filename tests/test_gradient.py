"""Tests for parameter-shift gradients on compiled circuits."""

import numpy as np
import pytest

from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.variational import QAOACircuit, ring_maxcut
from repro.variational.gradient import CompiledObjective, gradient_descent, parameter_shift_gradient


class TestParameterShiftRule:
    def test_matches_analytic_derivative_of_sinusoid(self):
        objective = lambda p: float(np.cos(p[0]) + 0.5 * np.sin(p[1]))
        point = np.array([0.3, 1.1])
        gradient = parameter_shift_gradient(objective, point)
        assert gradient[0] == pytest.approx(-np.sin(0.3), abs=1e-9)
        assert gradient[1] == pytest.approx(0.5 * np.cos(1.1), abs=1e-9)

    def test_zero_gradient_at_extremum(self):
        objective = lambda p: float(np.cos(p[0]))
        gradient = parameter_shift_gradient(objective, [0.0])
        assert gradient[0] == pytest.approx(0.0, abs=1e-12)


class TestCompiledObjective:
    @pytest.fixture
    def exact_objective(self):
        ansatz = QAOACircuit(ring_maxcut(4), iterations=1)
        simulator = KnowledgeCompilationSimulator(seed=3)
        return CompiledObjective(ansatz, simulator, exact=True)

    def test_exact_objective_value(self, exact_objective):
        # At gamma = 0 the cost layer is the identity, so the state stays the
        # uniform superposition: expected cut = half the edges -> objective -2.
        value = exact_objective([0.0, 0.7])
        assert value == pytest.approx(-2.0, abs=1e-9)

    def test_gradient_matches_finite_difference(self, exact_objective):
        point = np.array([0.45, 0.3])
        gradient = exact_objective.gradient(point)
        step = 1e-5
        for index in range(2):
            plus = point.copy()
            minus = point.copy()
            plus[index] += step
            minus[index] -= step
            numeric = (exact_objective(plus) - exact_objective(minus)) / (2 * step)
            assert gradient[index] == pytest.approx(numeric, abs=1e-4)

    def test_compiles_once_for_kc_backend(self, exact_objective):
        assert exact_objective._compiled is not None
        evaluations_before = exact_objective.num_evaluations
        exact_objective([0.2, 0.2])
        assert exact_objective.num_evaluations == evaluations_before + 1

    def test_sampled_objective_reasonable(self):
        ansatz = QAOACircuit(ring_maxcut(4), iterations=1)
        simulator = KnowledgeCompilationSimulator(seed=5)
        objective = CompiledObjective(ansatz, simulator, samples_per_evaluation=256, seed=5)
        value = objective([7 * np.pi / 8, np.pi / 8])
        # Near the p=1 optimum the sampled mean cut should clearly beat random guessing.
        assert value < -2.2


class TestGradientDescent:
    def test_descends_towards_better_objective(self):
        ansatz = QAOACircuit(ring_maxcut(4), iterations=1)
        simulator = KnowledgeCompilationSimulator(seed=7)
        objective = CompiledObjective(ansatz, simulator, exact=True)
        history = gradient_descent(
            objective, initial_parameters=[2.4, 0.6], learning_rate=0.05, num_steps=12
        )
        assert history[-1]["value"] < history[0]["value"]
        assert len(history) == 13
