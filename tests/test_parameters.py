"""Tests for symbolic parameters and resolvers."""

import pytest

from repro.circuits import ParameterExpression, ParamResolver, Symbol, is_parameterized, resolve
from repro.circuits.parameters import parameter_symbols


class TestSymbol:
    def test_equality_by_name(self):
        assert Symbol("gamma") == Symbol("gamma")
        assert Symbol("gamma") != Symbol("beta")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Symbol("")

    def test_scalar_multiplication_creates_expression(self):
        expression = 2 * Symbol("gamma")
        assert isinstance(expression, ParameterExpression)
        assert expression.coefficient == 2.0
        assert expression.evaluate(0.5) == 1.0

    def test_addition_and_negation(self):
        expression = Symbol("x") + 1.5
        assert expression.evaluate(2.0) == 3.5
        negated = -Symbol("x")
        assert negated.evaluate(2.0) == -2.0


class TestParameterExpression:
    def test_chained_arithmetic(self):
        expression = (Symbol("t") * 3) + 1
        assert expression.evaluate(2.0) == 7.0
        doubled = expression * 2
        assert doubled.evaluate(2.0) == 14.0

    def test_parameter_symbols(self):
        expression = 2 * Symbol("a")
        assert parameter_symbols(expression) == frozenset({Symbol("a")})
        assert parameter_symbols(1.5) == frozenset()


class TestParamResolver:
    def test_value_of_symbol(self):
        resolver = ParamResolver({"gamma": 0.7})
        assert resolver.value_of(Symbol("gamma")) == pytest.approx(0.7)

    def test_value_of_expression(self):
        resolver = ParamResolver({Symbol("gamma"): 0.5})
        assert resolver.value_of(2 * Symbol("gamma")) == pytest.approx(1.0)

    def test_unbound_symbol_raises(self):
        resolver = ParamResolver({})
        with pytest.raises(KeyError):
            resolver.value_of(Symbol("missing"))

    def test_numbers_pass_through(self):
        resolver = ParamResolver({})
        assert resolver.value_of(1.25) == 1.25

    def test_updated_returns_new_resolver(self):
        resolver = ParamResolver({"a": 1.0})
        updated = resolver.updated({"b": 2.0})
        assert "b" not in resolver
        assert updated.value_of(Symbol("a")) == 1.0
        assert updated.value_of(Symbol("b")) == 2.0

    def test_contains(self):
        resolver = ParamResolver({"a": 1.0})
        assert Symbol("a") in resolver
        assert "a" in resolver
        assert Symbol("b") not in resolver


class TestResolveHelpers:
    def test_is_parameterized(self):
        assert is_parameterized(Symbol("x"))
        assert is_parameterized(2 * Symbol("x"))
        assert not is_parameterized(3.0)

    def test_resolve_requires_resolver_for_symbols(self):
        with pytest.raises(ValueError):
            resolve(Symbol("x"), None)
        assert resolve(1.0, None) == 1.0
        assert resolve(Symbol("x"), ParamResolver({"x": 2.0})) == 2.0
