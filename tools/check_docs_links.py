#!/usr/bin/env python3
"""Docs link checker: every relative link in docs/*.md and README.md must resolve.

Checks Markdown links of the form ``[text](target)``:

* ``http(s)://`` and ``mailto:`` targets are skipped (no network in CI);
* anchors-only targets (``#section``) are checked against the same file's
  headings;
* relative targets must exist on disk (anchor suffixes are checked against
  the target file's headings when it is Markdown).

Exit status is non-zero when any link is broken.  Usage::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#+\s+(.*)$", re.MULTILINE)

ROOT = Path(__file__).resolve().parent.parent


def slugify(heading: str) -> str:
    """GitHub/mkdocs-style anchor slug for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"[\s]+", "-", slug).strip("-")


def anchors_of(path: Path) -> set:
    return {slugify(match) for match in HEADING_PATTERN.findall(path.read_text(encoding="utf-8"))}


def check_file(path: Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    for target in LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(path):
                errors.append(f"{path}: broken anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target!r} -> {resolved}")
            continue
        if anchor and resolved.suffix == ".md" and slugify(anchor) not in anchors_of(resolved):
            errors.append(f"{path}: broken anchor {target!r} in {resolved.name}")
    return errors


def main() -> int:
    files = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
