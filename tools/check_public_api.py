#!/usr/bin/env python
"""Guard the public API surface against unreviewed changes.

Snapshots ``repro.__all__`` plus the signature of every public callable
(functions, classes and their public methods/properties) into
``tools/public_api.json``.  CI runs this script in check mode: any drift —
a removed export, a changed signature, a new public method — fails the
build until the snapshot is regenerated *deliberately* with ``--update``
and the diff reviewed.

Usage::

    python tools/check_public_api.py            # check against the snapshot
    python tools/check_public_api.py --update   # regenerate the snapshot
"""

from __future__ import annotations

import argparse
import inspect
import json
import re
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

SNAPSHOT_PATH = _REPO_ROOT / "tools" / "public_api.json"


#: Default-value reprs that embed a memory address (sentinel objects) are
#: unstable across interpreter runs; normalize them.
_ADDRESS_RE = re.compile(r"<(?P<what>[\w. ]+) at 0x[0-9a-fA-F]+>")


def _signature_of(obj) -> str:
    try:
        return _ADDRESS_RE.sub(r"<\g<what>>", str(inspect.signature(obj)))
    except (TypeError, ValueError):
        return "(...)"


def _describe_class(cls) -> dict:
    members = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_") and name != "__init__":
            continue
        if isinstance(member, property):
            members[name] = "<property>"
        elif isinstance(member, (staticmethod, classmethod)):
            members[name] = _signature_of(member.__func__)
        elif callable(member):
            members[name] = _signature_of(member)
    return members


def build_snapshot() -> dict:
    import repro

    exports = {}
    for name in sorted(repro.__all__):
        obj = getattr(repro, name)
        if inspect.isclass(obj):
            exports[name] = {"kind": "class", "members": _describe_class(obj)}
        elif callable(obj):
            exports[name] = {"kind": "function", "signature": _signature_of(obj)}
        else:
            exports[name] = {"kind": "value", "type": type(obj).__name__}
    return {"all": sorted(repro.__all__), "exports": exports}


def _diff(expected: dict, actual: dict) -> list:
    problems = []
    removed = sorted(set(expected["all"]) - set(actual["all"]))
    added = sorted(set(actual["all"]) - set(expected["all"]))
    if removed:
        problems.append(f"removed exports: {removed}")
    if added:
        problems.append(f"new exports (snapshot them with --update): {added}")
    for name in sorted(set(expected["all"]) & set(actual["all"])):
        if expected["exports"][name] != actual["exports"][name]:
            problems.append(
                f"signature change in {name!r}:\n"
                f"  snapshot: {json.dumps(expected['exports'][name], sort_keys=True)}\n"
                f"  current : {json.dumps(actual['exports'][name], sort_keys=True)}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="regenerate the snapshot file"
    )
    arguments = parser.parse_args(argv)

    actual = build_snapshot()
    if arguments.update:
        SNAPSHOT_PATH.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT_PATH.relative_to(_REPO_ROOT)} "
              f"({len(actual['all'])} exports)")
        return 0

    if not SNAPSHOT_PATH.exists():
        print("no snapshot found; run `python tools/check_public_api.py --update`")
        return 1
    expected = json.loads(SNAPSHOT_PATH.read_text())
    problems = _diff(expected, actual)
    if problems:
        print("public API drift detected:")
        for problem in problems:
            print(f"- {problem}")
        print("\nif intentional, regenerate with `python tools/check_public_api.py --update`")
        return 1
    print(f"public API matches the snapshot ({len(actual['all'])} exports)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
