"""The project-invariant rule set (see each rule's ``invariant``).

Every rule here is motivated by a property an earlier PR paid for:
deterministic ``seed + index`` replay (PRs 3/6), the typed-error service
boundary (PR 5), crash containment across the process pool (PR 6), and the
fsync-then-rename / ``O_APPEND``-WAL durability discipline of the compile
cache and job journal (PRs 3/6).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple, Type

from .core import FileContext, Rule, dotted_name

#: Typed error classes defined by ``repro.errors`` (referencing one inside an
#: ``except Exception`` handler counts as converting to a typed failure).
REPRO_ERROR_NAMES = {
    "ReproError",
    "UnsupportedCircuitError",
    "BackendCapabilityError",
    "MemoryBudgetError",
    "CompilationError",
    "TransientError",
    "JobError",
    "JobCancelledError",
    "JobTimeoutError",
    "WorkerCrashedError",
    "InvalidRequestError",
    "RequestTypeError",
    "MissingObservableError",
}

#: Failure-record types the scheduler uses to capture errors as data.
FAILURE_RECORD_NAMES = {"ItemFailure", "_RemoteFailure"}


def _in_package(path: str, pattern: str) -> bool:
    return re.search(pattern, path) is not None


# ----------------------------------------------------------------------
class RngDisciplineRule(Rule):
    rule_id = "rng-discipline"
    description = (
        "no global-state RNGs, wall-clock, or entropy sources; unseeded "
        "default_rng() only in the designated `rng or default_rng()` idiom"
    )
    invariant = (
        "Bit-identical replay (serial == pooled == resumed-after-SIGKILL) "
        "requires every random draw to flow from the caller's seed + item "
        "index.  A single time.time()/np.random.rand() silently breaks the "
        "journal/resume and retry guarantees of PR 6."
    )

    #: np.random attributes that are part of the Generator API, not the
    #: legacy global-state surface.
    ALLOWED_NP_RANDOM = {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "Philox",
    }

    #: Wall-clock / entropy calls that must never feed results.  Monotonic
    #: clocks (time.monotonic / time.perf_counter) schedule work and time
    #: benchmarks without entering any result, so they stay legal.
    NONDET_CALLS = {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.datetime.now",
        "datetime.utcnow",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }

    NONDET_BARE = {"uuid1", "uuid4", "urandom", "token_bytes", "token_hex"}

    def run(self) -> List:
        # Pre-pass: `x or default_rng()` is the one sanctioned unseeded
        # entry-point idiom (the caller's Generator wins when provided).
        self._or_allowed: Set[int] = set()
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                for value in node.values[1:]:
                    if self._is_default_rng(value):
                        self._or_allowed.add(id(value))
        self.visit(self.ctx.tree)
        return self.findings

    @staticmethod
    def _is_default_rng(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and (dotted_name(node.func) or "").endswith("default_rng")
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "the stdlib `random` module is process-global state; plumb a "
                    "seeded np.random.Generator from the caller instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "importing from the stdlib `random` module breaks seed+index "
                "replay; use numpy Generators plumbed from the caller",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            if name in self.NONDET_CALLS or name in self.NONDET_BARE:
                self.report(
                    node,
                    f"`{name}()` is a nondeterministic source; results must be "
                    "pure functions of the submission and its seed",
                )
            else:
                match = re.fullmatch(r"(?:np|numpy)\.random\.(\w+)", name)
                if match and match.group(1) not in self.ALLOWED_NP_RANDOM:
                    self.report(
                        node,
                        f"`{name}()` uses numpy's legacy global RNG state; use a "
                        "seeded np.random.default_rng(seed) Generator",
                    )
                elif (
                    self._is_default_rng(node)
                    and not node.args
                    and not node.keywords
                    and id(node) not in self._or_allowed
                ):
                    self.report(
                        node,
                        "unseeded default_rng() outside the `rng or default_rng()` "
                        "entry-point idiom; accept (rng/seed) from the caller",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
class TypedErrorsRule(Rule):
    rule_id = "typed-errors"
    description = (
        "code under src/repro/api/ raises repro.errors types, never bare builtins"
    )
    invariant = (
        "The Device/Job boundary is the future service surface (ROADMAP item "
        "1): clients and the retry classifier route on error *class*.  A bare "
        "ValueError is invisible to RetryPolicy.retryable and unmappable to a "
        "wire-format error code."
    )

    #: Raising any of these builtins directly is a boundary violation.
    BUILTIN_ERRORS = {
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "AttributeError",
        "LookupError",
        "ArithmeticError",
        "OSError",
        "IOError",
        "NotImplementedError",
        "TimeoutError",
        "Exception",
        "BaseException",
    }

    #: File paths the boundary rule applies to.
    SCOPE = r"(^|/)repro/api/[^/]+\.py$"

    def run(self) -> List:
        if not _in_package(self.ctx.path, self.SCOPE):
            return self.findings
        self.visit(self.ctx.tree)
        return self.findings

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name: Optional[str] = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id if exc.id in self.BUILTIN_ERRORS else None
        if name in self.BUILTIN_ERRORS:
            self.report(
                node,
                f"`raise {name}` at the api boundary; raise a repro.errors class "
                "(double-inheriting the builtin keeps old `except` clauses working)",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
class BroadExceptRule(Rule):
    rule_id = "broad-except"
    description = (
        "no bare `except:`; `except Exception` must re-raise, convert to a "
        "typed failure record, or carry a justified pragma"
    )
    invariant = (
        "Crash containment (PR 6) only works because failures keep their "
        "type: the retry classifier, the per-item failure records, and the "
        "original-type re-raise through the pool all depend on exceptions "
        "not being silently swallowed."
    )

    BROAD = {"Exception", "BaseException"}

    def _handler_names(self, node: ast.ExceptHandler) -> List[str]:
        types = []
        if isinstance(node.type, ast.Tuple):
            types = list(node.type.elts)
        elif node.type is not None:
            types = [node.type]
        names = []
        for entry in types:
            name = dotted_name(entry)
            if name is not None:
                names.append(name.rsplit(".", 1)[-1])
        return names

    def _converts_failure(self, node: ast.ExceptHandler) -> bool:
        """True when the handler re-raises or captures the error as typed data."""
        for child in ast.walk(ast.Module(body=node.body, type_ignores=[])):
            if isinstance(child, ast.Raise):
                return True
            if isinstance(child, ast.Name) and (
                child.id in FAILURE_RECORD_NAMES or child.id in REPRO_ERROR_NAMES
            ):
                return True
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` catches SystemExit/KeyboardInterrupt and hides "
                "everything; name the exception classes",
            )
        elif any(name in self.BROAD for name in self._handler_names(node)):
            if not self._converts_failure(node):
                broad = " / ".join(
                    name for name in self._handler_names(node) if name in self.BROAD
                )
                self.report(
                    node,
                    f"`except {broad}` swallows the failure; narrow the type, "
                    "re-raise, convert to an ItemFailure/typed error, or add "
                    "`# reprolint: disable=broad-except -- <why>`",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
class PoolSafetyRule(Rule):
    rule_id = "pool-safety"
    description = (
        "work crossing the process-pool boundary must be module-level, "
        "picklable, and must not mutate module globals or smuggle live state"
    )
    invariant = (
        "The scheduler re-dispatches tasks into fresh worker processes after "
        "crashes; anything unpicklable (lambdas, locks, open handles, live "
        "simulators) or dependent on parent-process globals diverges between "
        "serial and pooled runs or dies with PicklingError mid-retry."
    )

    #: Mutating-method names on module-level containers.
    MUTATORS = {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "setdefault",
    }

    #: Calls whose result is a live backend/simulator instance.
    LIVE_FACTORIES = {"create_backend", "backend_instance"}

    def run(self) -> List:
        tree = self.ctx.tree
        self._module_functions: Set[str] = {
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        }
        # Functions defined inside another function's body (closures).
        # Methods are *not* nested functions: a bare reference to a method
        # name is some local variable, not the method.
        self._nested_functions: Set[str] = set()
        enclosing: List[ast.AST] = [
            node
            for top in tree.body
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            for node in ast.walk(top)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for function in enclosing:
            for child in ast.walk(function):
                if (
                    isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child is not function
                ):
                    self._nested_functions.add(child.name)
        self._module_mutables: Set[str] = set()
        self._module_handles: Set[str] = set()
        for node in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
                    self._module_mutables.add(target.id)
                elif isinstance(value, ast.Call):
                    callee = dotted_name(value.func) or ""
                    tail = callee.rsplit(".", 1)[-1]
                    if tail in ("dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"):
                        self._module_mutables.add(target.id)
                    elif tail in ("open", "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event"):
                        self._module_handles.add(target.id)

        self._worker_functions: Dict[str, ast.AST] = {}
        self.visit(tree)
        self._check_worker_bodies(tree)
        return self.findings

    # -- dispatch-point detection --------------------------------------
    def _flag_callable(self, node: ast.expr, where: str) -> None:
        if isinstance(node, ast.Lambda):
            self.report(
                node,
                f"lambda passed {where}: lambdas do not pickle across the "
                "process-pool boundary; use a module-level function",
            )
        elif isinstance(node, ast.Name):
            if node.id in self._nested_functions and node.id not in self._module_functions:
                self.report(
                    node,
                    f"nested function `{node.id}` passed {where}: closures do "
                    "not pickle; hoist it to module level",
                )
            elif node.id in self._module_functions:
                self._worker_functions.setdefault(node.id, node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func) or ""
        tail = callee.rsplit(".", 1)[-1]
        if tail == "submit" and node.args:
            # executor.submit(fn, ...) / scheduler submit(tasks) — the task
            # tuples themselves are picked up by visit_Tuple below.
            self._flag_callable(node.args[0], "to submit()")
        if tail in ("Process",):
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self._flag_callable(keyword.value, "as a Process target")
        self.generic_visit(node)

    def visit_Tuple(self, node: ast.Tuple) -> None:
        # Task tuples: (worker_function, payload[, indices, key]).
        if (
            isinstance(node.ctx, ast.Load)
            and len(node.elts) >= 2
            and isinstance(node.elts[0], ast.Name)
        ):
            first = node.elts[0].id
            if first in self._module_functions:
                self._worker_functions.setdefault(first, node)
            elif first in self._nested_functions:
                self._flag_callable(node.elts[0], "in a task tuple")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Live backend instances in task payloads: a dict in a task tuple
        # holding a name bound from a backend factory call.
        live: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and isinstance(child.value, ast.Call):
                callee = dotted_name(child.value.func) or ""
                tail = callee.rsplit(".", 1)[-1]
                if tail in self.LIVE_FACTORIES or tail.endswith("Simulator"):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            live.add(target.id)
        if live:
            for child in ast.walk(node):
                if not (isinstance(child, ast.Tuple) and len(child.elts) >= 2):
                    continue
                head = child.elts[0]
                if not (isinstance(head, ast.Name) and head.id in self._module_functions):
                    continue
                for element in child.elts[1:]:
                    values = element.values if isinstance(element, ast.Dict) else [element]
                    for value in values:
                        if isinstance(value, ast.Name) and value.id in live:
                            self.report(
                                value,
                                f"live backend instance `{value.id}` rides in a task "
                                "payload; it will not pickle into a pool worker — "
                                "hydrate backends inside the worker instead",
                            )
        self.generic_visit(node)

    # -- worker-body checks --------------------------------------------
    def _check_worker_bodies(self, tree: ast.Module) -> None:
        interesting = self._module_mutables | self._module_handles
        if not interesting or not self._worker_functions:
            return
        for top in tree.body:
            if not isinstance(top, ast.FunctionDef):
                continue
            if top.name not in self._worker_functions:
                continue
            for child in ast.walk(top):
                target_name: Optional[str] = None
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = child.targets if isinstance(child, ast.Assign) else [child.target]
                    for target in targets:
                        root = target
                        while isinstance(root, ast.Subscript):
                            root = root.value
                        if isinstance(root, ast.Name) and root.id in self._module_mutables:
                            if isinstance(target, ast.Subscript) or isinstance(child, ast.AugAssign):
                                target_name = root.id
                elif isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
                    receiver = child.func.value
                    if (
                        isinstance(receiver, ast.Name)
                        and receiver.id in self._module_mutables
                        and child.func.attr in self.MUTATORS
                    ):
                        target_name = receiver.id
                elif isinstance(child, ast.Name) and child.id in self._module_handles:
                    self.report(
                        child,
                        f"worker-executed `{top.name}` references module-level "
                        f"handle `{child.id}` (lock/file); handles do not survive "
                        "the fork/pickle boundary — open them inside the worker",
                    )
                if target_name is not None:
                    self.report(
                        child,
                        f"worker-executed `{top.name}` mutates module global "
                        f"`{target_name}`; workers mutate their own copy (or race) "
                        "— return state through the task result instead",
                    )


# ----------------------------------------------------------------------
class AtomicWriteRule(Rule):
    rule_id = "atomic-write"
    description = (
        "persisted writes go through the audited atomic-write/WAL helpers "
        "(write-temp + fsync + os.replace, or the O_APPEND fingerprinted WAL)"
    )
    invariant = (
        "Journal manifests, compile-cache payloads and result artifacts must "
        "never be observable half-written: a crash mid-write must cost work, "
        "not correctness.  Raw open(..., 'w') can tear; only the audited "
        "helpers in repro.atomicio (and the two audited WAL/cache appenders) "
        "may touch the filesystem in write mode."
    )

    #: (path regex, audited qualnames) — raw writes inside these are the
    #: implementations of the discipline itself.
    AUDITED: Tuple[Tuple[str, Set[str]], ...] = (
        (r"(^|/)repro/atomicio\.py$", {"*"}),
        (r"(^|/)repro/api/journal\.py$", {"JobJournal.checkpoint_row"}),
        (r"(^|/)repro/knowledge/cache\.py$", {"CompiledCircuitCache.store_payload"}),
    )

    WRITE_MODE = re.compile(r"[wax+]")

    def run(self) -> List:
        self._audited: Set[str] = set()
        for pattern, qualnames in self.AUDITED:
            if _in_package(self.ctx.path, pattern):
                self._audited |= qualnames
        self._stack: List[str] = []
        self.visit(self.ctx.tree)
        return self.findings

    def _inside_audited(self) -> bool:
        if "*" in self._audited:
            return True
        qualname = ".".join(self._stack)
        return any(qualname == audited or qualname.startswith(audited + ".") for audited in self._audited)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _mode_of(self, node: ast.Call, position: int) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                value = keyword.value.value
                return value if isinstance(value, str) else None
        if len(node.args) > position and isinstance(node.args[position], ast.Constant):
            value = node.args[position].value
            return value if isinstance(value, str) else None
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if not self._inside_audited():
            name = dotted_name(node.func) or ""
            tail = name.rsplit(".", 1)[-1]
            if name == "open" or name == "os.fdopen" or tail == "fdopen":
                mode = self._mode_of(node, 1)
                if mode is not None and self.WRITE_MODE.search(mode):
                    self.report(
                        node,
                        f"raw `{name}(..., {mode!r})`: persisted writes must go "
                        "through repro.atomicio (write-temp + fsync + os.replace) "
                        "or an audited WAL appender",
                    )
            elif name == "os.write":
                self.report(
                    node,
                    "raw `os.write`: only the audited O_APPEND WAL appender may "
                    "write descriptors directly",
                )
            elif name == "os.open":
                flag_source = ast.dump(node)
                if any(flag in flag_source for flag in ("O_WRONLY", "O_RDWR", "O_APPEND", "O_CREAT")):
                    self.report(
                        node,
                        "raw writable `os.open`: route the write through "
                        "repro.atomicio or an audited WAL appender",
                    )
            elif tail in ("write_text", "write_bytes") and isinstance(node.func, ast.Attribute):
                self.report(
                    node,
                    f"`.{tail}()` writes in place (torn on crash); use "
                    "repro.atomicio.atomic_write_text/bytes",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
class NoPrintRule(Rule):
    rule_id = "no-print"
    description = "library code never calls print() (CLI mains are baselined)"
    invariant = (
        "src/repro is imported by services, pool workers and test harnesses; "
        "stray stdout corrupts machine-readable output (benchmark JSON, "
        "DIMACS dumps) and interleaves nondeterministically under the pool."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                "print() in library code; return/log the value instead (CLI "
                "entry points are grandfathered in the baseline)",
            )
        self.generic_visit(node)


#: Registration order == report order.
ALL_RULES: Tuple[Type[Rule], ...] = (
    RngDisciplineRule,
    TypedErrorsRule,
    BroadExceptRule,
    PoolSafetyRule,
    AtomicWriteRule,
    NoPrintRule,
)
