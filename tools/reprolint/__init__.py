"""reprolint — project-invariant static analysis for the repro code base.

An AST-based rule engine that turns the conventions PRs 1–6 rely on into
machine-checked invariants:

* **rng-discipline** — bit-identical replay requires every random draw to
  flow from a caller-supplied ``seed + index``; no global-state RNGs, no
  wall-clock or entropy sources feeding results;
* **typed-errors** — the ``Device``/``Job`` boundary (``src/repro/api/``)
  raises only the typed ``repro.errors`` hierarchy, never bare builtins;
* **broad-except** — no bare ``except:``; ``except Exception`` must
  re-raise, convert to a typed failure record, or carry a justified pragma;
* **pool-safety** — functions crossing the process-pool boundary must be
  module-level and must not smuggle lambdas, locks, open handles, or live
  simulator instances; worker-executed code must not mutate module globals;
* **atomic-write** — persisted artifacts go through the audited
  fsync-then-``os.replace`` / ``O_APPEND``-WAL helpers, never raw writes;
* **no-print** — library code never prints (CLI entry points are
  grandfathered via the baseline).

Run it as ``python -m reprolint src/repro --baseline
tools/reprolint_baseline.json`` (see ``tools/reprolint/cli.py``).  The
committed baseline is a *ratchet*: per-rule per-file counts may only go
down; any new finding fails the build.
"""

from .core import FileContext, Finding, Rule, run_paths
from .rules import ALL_RULES
from .baseline import compare_to_baseline, load_baseline, update_baseline

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "Rule",
    "compare_to_baseline",
    "load_baseline",
    "run_paths",
    "update_baseline",
    "__version__",
]
