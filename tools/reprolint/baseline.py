"""Baseline (ratchet) support.

The committed baseline grandfathers findings that are *justified* — each
entry carries a one-line reason.  Its semantics are a ratchet:

* a (rule, file) pair may produce **at most** its baselined count of
  findings — any extra finding is *new* and fails the run;
* findings in files/rules with no baseline entry always fail;
* when the observed count drops **below** the allowance the run still
  passes but reports the improvement, so the allowance can be tightened
  (``--update-baseline`` rewrites counts while preserving justifications).

Format (``tools/reprolint_baseline.json``)::

    {
      "version": 1,
      "rules": {
        "<rule-id>": {
          "<path>": {"count": N, "justification": "..."}
        }
      }
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from .core import Finding

#: typed-errors must never be baselined under the api package — the
#: acceptance bar is *zero* builtin raises at the service boundary.
UNBASELINABLE: Tuple[Tuple[str, str], ...] = (("typed-errors", "repro/api/"),)


class BaselineError(ValueError):
    """Malformed or policy-violating baseline file."""


def load_baseline(path: str) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Load and validate the baseline, returning its ``rules`` mapping."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("version") != 1:
        raise BaselineError(f"{path}: expected a version-1 baseline object")
    rules = data.get("rules", {})
    if not isinstance(rules, dict):
        raise BaselineError(f"{path}: 'rules' must be an object")
    for rule_id, files in rules.items():
        if not isinstance(files, dict):
            raise BaselineError(f"{path}: rules[{rule_id!r}] must be an object")
        for file_path, entry in files.items():
            if not isinstance(entry, dict) or not isinstance(entry.get("count"), int):
                raise BaselineError(
                    f"{path}: rules[{rule_id!r}][{file_path!r}] needs an integer 'count'"
                )
            if not str(entry.get("justification", "")).strip():
                raise BaselineError(
                    f"{path}: rules[{rule_id!r}][{file_path!r}] needs a justification"
                )
            for banned_rule, banned_prefix in UNBASELINABLE:
                if rule_id == banned_rule and banned_prefix in file_path:
                    raise BaselineError(
                        f"{path}: {banned_rule} findings under {banned_prefix} may "
                        "not be baselined — fix them"
                    )
    return rules


def compare_to_baseline(
    findings: Sequence[Finding],
    baseline: Dict[str, Dict[str, Dict[str, object]]],
) -> Tuple[List[Finding], List[str]]:
    """Split findings into (new, improvement-notes) against the ratchet.

    Allowances are consumed per (rule, path) in report order, so with a
    count of N the first N findings in a file are grandfathered and any
    beyond that are new.
    """
    counts: Counter = Counter((f.rule, f.path) for f in findings)
    new: List[Finding] = []
    seen: Counter = Counter()
    for finding in findings:
        key = (finding.rule, finding.path)
        entry = baseline.get(finding.rule, {}).get(finding.path)
        allowed = int(entry["count"]) if entry else 0
        seen[key] += 1
        if seen[key] > allowed:
            new.append(finding)
    improvements: List[str] = []
    for rule_id, files in sorted(baseline.items()):
        for file_path, entry in sorted(files.items()):
            observed = counts.get((rule_id, file_path), 0)
            allowed = int(entry["count"])
            if observed < allowed:
                improvements.append(
                    f"{file_path}: [{rule_id}] {observed}/{allowed} findings remain "
                    "— tighten the baseline (run with --update-baseline)"
                )
    return new, improvements


def update_baseline(
    path: str,
    findings: Sequence[Finding],
    previous: Dict[str, Dict[str, Dict[str, object]]],
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Rewrite the baseline to current counts, keeping old justifications.

    Entries whose findings are gone are dropped; genuinely new (rule, file)
    pairs get a placeholder justification that the loader will reject until
    a human writes a real one — updating the baseline is an explicit,
    reviewed act, not an auto-absolution.
    """
    counts: Counter = Counter((f.rule, f.path) for f in findings)
    rules: Dict[str, Dict[str, Dict[str, object]]] = {}
    for (rule_id, file_path), count in sorted(counts.items()):
        old = previous.get(rule_id, {}).get(file_path, {})
        justification = str(old.get("justification", "")).strip()
        rules.setdefault(rule_id, {})[file_path] = {
            "count": count,
            "justification": justification or "TODO: justify or fix",
        }
    payload = {"version": 1, "rules": rules}
    serialized = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialized)
    return rules
