"""Rule engine: file contexts, pragma handling, findings, the file walker.

The engine is deliberately small: a :class:`Rule` is an ``ast.NodeVisitor``
subclass with a ``rule_id``; :func:`run_paths` parses every ``.py`` file
under the given paths once, runs every rule over the shared tree, and
splits the produced :class:`Finding` records into *kept* and
*pragma-suppressed*.

Pragmas
-------
Two comment forms, matched anywhere on a line::

    # reprolint: disable=rule-id[,rule-id2] [-- justification]
    # reprolint: disable-file=rule-id[,rule-id2] [-- justification]

``disable`` suppresses findings reported *on that line* (put it on the
``except ...:`` / ``open(...)`` line itself); ``disable-file`` suppresses a
rule for the whole file.  ``disable=all`` is intentionally unsupported —
each suppression names the invariant it waives.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: Pragma comment syntax (the trailing ``-- justification`` is free text).
PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(disable|disable-file)=([A-Za-z0-9_,\s-]+?)(?:\s*--|$)")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class FileContext:
    """One parsed source file shared by every rule.

    ``path`` is kept exactly as discovered (normalised to forward slashes)
    so findings and baseline entries are stable across platforms and
    independent of the machine's absolute checkout location.
    """

    def __init__(self, path: str, source: str):
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.line_disables: Dict[int, Set[str]] = {}
        self.file_disables: Set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            for kind, rules in PRAGMA_RE.findall(line):
                ids = {rule.strip() for rule in rules.split(",") if rule.strip()}
                if kind == "disable-file":
                    self.file_disables |= ids
                else:
                    self.line_disables.setdefault(lineno, set()).update(ids)

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_disables:
            return True
        return finding.rule in self.line_disables.get(finding.line, ())


class Rule(ast.NodeVisitor):
    """Base class of every reprolint rule.

    Subclasses set ``rule_id`` / ``description`` / ``invariant`` and either
    override visitor methods (calling :meth:`report` on violations) or
    override :meth:`run` entirely for multi-pass analyses.
    """

    #: Stable kebab-case identifier used in pragmas and the baseline.
    rule_id: str = ""
    #: One-line summary for ``--list-rules`` and reports.
    description: str = ""
    #: The project invariant the rule protects (docs catalogue).
    invariant: str = ""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(self.ctx.path, getattr(node, "lineno", 1), self.rule_id, message)
        )

    def run(self) -> List[Finding]:
        self.visit(self.ctx.tree)
        return self.findings


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in ("__pycache__", ".git"))
            for name in sorted(files):
                if name.endswith(".py"):
                    found.append(os.path.join(root, name))
    return sorted(found)


@dataclasses.dataclass
class RunResult:
    """Everything one engine run produced."""

    findings: List[Finding]
    suppressed: List[Finding]
    files_checked: int
    errors: List[str]


def run_paths(
    paths: Sequence[str], rules: Iterable[Type[Rule]]
) -> RunResult:
    """Run ``rules`` over every python file under ``paths``."""
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    errors: List[str] = []
    files = iter_python_files(paths)
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            ctx = FileContext(path, source)
        except (OSError, SyntaxError, ValueError) as error:
            errors.append(f"{path}: {error}")
            continue
        for rule_class in rules:
            for finding in rule_class(ctx).run():
                (suppressed if ctx.suppressed(finding) else findings).append(finding)
    findings.sort()
    suppressed.sort()
    return RunResult(findings, suppressed, len(files), errors)
