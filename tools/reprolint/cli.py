"""Command-line front end: ``python -m reprolint [paths...] [options]``.

Exit codes: 0 = clean (or within baseline), 1 = new findings or parse
errors, 2 = usage / malformed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .baseline import BaselineError, compare_to_baseline, load_baseline, update_baseline
from .core import RunResult, run_paths
from .rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Project-invariant static analysis for the repro code base.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON ratchet baseline; findings within it pass, new ones fail",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline to current counts (keeps justifications)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="also write a JSON findings report (for CI artifacts)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _report_payload(result: RunResult, new_findings: Sequence, improvements: Sequence[str]) -> dict:
    return {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.findings],
        "new_findings": [f.as_dict() for f in new_findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "improvements": list(improvements),
        "errors": list(result.errors),
        "rules": [
            {"id": rule.rule_id, "description": rule.description}
            for rule in ALL_RULES
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}: {rule.description}")
        return 0

    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline")

    result = run_paths(args.paths, ALL_RULES)

    baseline = {}
    if args.baseline and not args.update_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, json.JSONDecodeError, BaselineError) as error:
            print(f"reprolint: bad baseline: {error}", file=sys.stderr)
            return 2

    if args.update_baseline:
        try:
            previous = load_baseline(args.baseline)
        except (OSError, json.JSONDecodeError, BaselineError):
            previous = {}
        update_baseline(args.baseline, result.findings, previous)
        print(f"reprolint: wrote {args.baseline} ({len(result.findings)} findings)")
        return 0

    new_findings, improvements = compare_to_baseline(result.findings, baseline)

    if args.report:
        payload = _report_payload(result, new_findings, improvements)
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.format == "json":
        print(json.dumps(_report_payload(result, new_findings, improvements), indent=2, sort_keys=True))
    else:
        for finding in new_findings:
            print(finding.render())
        for note in improvements:
            print(f"note: {note}")
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        grandfathered = len(result.findings) - len(new_findings)
        summary = (
            f"reprolint: {result.files_checked} files, "
            f"{len(new_findings)} new finding(s), "
            f"{grandfathered} baselined, {len(result.suppressed)} suppressed"
        )
        print(summary)

    return 1 if new_findings or result.errors else 0


if __name__ == "__main__":
    sys.exit(main())
