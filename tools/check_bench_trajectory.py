#!/usr/bin/env python3
"""Benchmark trajectory gate: BENCH_all.json must stay above real floors.

Validates the committed ``BENCH_all.json`` (schema + absolute floors), and
— when CI hands it a freshly regenerated artifact — gates the fresh run
against the same floors and prints the committed-vs-fresh drift per
headline metric.  Absolute floors rather than committed-vs-fresh ratios:
shared runners are 2-5x slower and noisier than the machines that commit
artifacts, so a ratio gate would either flap or need so much headroom it
gates nothing.

Every floor is real (non-zero) and env-overridable for *slower* runners,
never disableable to 0.  Local measurements vs floors:

===========================  ============  =======================
metric                        local         floor (CI headroom)
===========================  ============  =======================
api_speedup                   ~68x          >= 3.0   (~20x slack)
sweep_speedup                 ~25x          >= 3.0   (~8x slack)
stabilizer_seconds            ~0.65s        <= 2.0   (~3x slack)
optimizer_speedup             ~3.6x         >= 1.25  (~3x slack)
robustness_overhead           ~0.07         <= 0.60  (~9x slack)
cost_routing_accuracy         1.00          >= 0.80  (10 misses/50)
===========================  ============  =======================

Usage::

    python tools/check_bench_trajectory.py                # committed only
    python tools/check_bench_trajectory.py --fresh BENCH_all.fresh.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

SECTIONS = ("api", "sweep", "stabilizer", "optimizer", "robustness", "cost_routing")

# metric -> (env override, default bound, "min" floor or "max" ceiling)
GATES = {
    "api_speedup": ("BENCH_API_MIN_SPEEDUP", 3.0, "min"),
    "sweep_speedup": ("BENCH_SWEEP_MIN_SPEEDUP", 3.0, "min"),
    "stabilizer_seconds": ("BENCH_STABILIZER_MAX_SECONDS", 2.0, "max"),
    "optimizer_speedup": ("BENCH_OPTIMIZER_MIN_SPEEDUP", 1.25, "min"),
    "robustness_overhead": ("BENCH_ROBUSTNESS_MAX_OVERHEAD", 0.60, "max"),
    "cost_routing_accuracy": ("BENCH_COST_ROUTING_MIN_ACCURACY", 0.80, "min"),
}


def load_artifact(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict):
        raise SystemExit(f"{path}: not a JSON object")
    return artifact


def check_artifact(label: str, path: Path, artifact: dict) -> list:
    errors = []
    if artifact.get("benchmark") != "bench_all":
        errors.append(f"{label}: {path} is not a bench_all artifact")
        return errors
    for section in SECTIONS:
        if section not in artifact:
            errors.append(f"{label}: missing section {section!r} (partial run?)")
    metrics = artifact.get("metrics", {})
    for metric, (env, default, kind) in GATES.items():
        bound = float(os.environ.get(env, default))
        if bound <= 0:
            errors.append(f"{label}: {env} must be positive, got {bound} (gate disabled)")
            continue
        value = metrics.get(metric)
        if not isinstance(value, (int, float)):
            errors.append(f"{label}: metrics[{metric!r}] missing or non-numeric")
            continue
        if kind == "min" and value < bound:
            errors.append(f"{label}: {metric} = {value} below floor {bound} ({env})")
        if kind == "max" and value > bound:
            errors.append(f"{label}: {metric} = {value} above ceiling {bound} ({env})")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--committed",
        type=Path,
        default=ROOT / "BENCH_all.json",
        help="the committed artifact (default: repository root BENCH_all.json)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="a freshly regenerated artifact to gate and diff against committed",
    )
    options = parser.parse_args()

    committed = load_artifact(options.committed)
    errors = check_artifact("committed", options.committed, committed)

    if options.fresh is not None:
        fresh = load_artifact(options.fresh)
        errors.extend(check_artifact("fresh", options.fresh, fresh))
        print(f"{'metric':28s} {'committed':>12s} {'fresh':>12s}")
        for metric in GATES:
            old = committed.get("metrics", {}).get(metric)
            new = fresh.get("metrics", {}).get(metric)
            print(f"{metric:28s} {old!s:>12s} {new!s:>12s}")

    for error in errors:
        print(error, file=sys.stderr)
    checked = 1 if options.fresh is None else 2
    print(f"checked {checked} artifact(s), {len(errors)} gate violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
