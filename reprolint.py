"""Repo-root shim so ``python -m reprolint`` works from a plain checkout.

The real package lives in ``tools/reprolint/``; this module puts ``tools/``
first on ``sys.path`` and re-executes the CLI from there.  CI and scripts
that already set ``PYTHONPATH=tools`` import the package directly.
"""

import os
import sys

_TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "tools")
# tools/ must sit *ahead* of the repo root, or importing the package name
# resolves back to this shim (PYTHONPATH=tools puts it after cwd).
while _TOOLS in sys.path:
    sys.path.remove(_TOOLS)
sys.path.insert(0, _TOOLS)

# Drop this shim from the module cache so the package import wins.
sys.modules.pop("reprolint", None)

from reprolint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
